"""Declarative scenario-matrix campaigns.

A *campaign* declares a cross-product of experiment axes -- workload
family, job-count ladder, DCA equation, admission policy, OPT backend
and seeds -- plus exclusion clauses, and :func:`expand` deterministically
materialises it into the concrete scenario objects the rest of the
stack already knows how to evaluate, shard and cache:

* batch families (``edge``, ``pipeline``) become
  :class:`~repro.experiments.parallel.ScenarioSpec` instances driven
  through :func:`~repro.experiments.parallel.evaluate_scenarios`;
* stream families (``poisson``, ``mmpp``, ``diurnal``) become
  :class:`~repro.online.engine.OnlineScenarioSpec` instances driven
  through :func:`~repro.online.engine.evaluate_online`.

Axis semantics
--------------
``family``
    Which generator produces the scenario.  Batch families sweep the
    figure-style one-shot analyses; stream families sweep the online
    admission engine.
``jobs``
    Job-count ladder: ``num_jobs`` of the batch workload configs,
    ``pool_size`` of the online stream pool.
``equation``
    DCA delay-bound equation of the batch analyses (``eq1``..``eq6``,
    ``eq10``).  Ignored by stream families.
``policy``
    Admission policy of the online engine (``preemptive`` |
    ``nonpreemptive`` | ``edge`` | any equation name).  Ignored by
    batch families.
``opt_backend``
    MILP backend of the batch OPT approach.  Ignored by stream
    families.
``shards``
    Resource-shard count of the online admission engine (1 = the
    monolithic single-cell engine; > 1 runs the sharded engine over a
    blocked :class:`~repro.core.partition.ShardMap`).  Ignored by
    batch families.
``seed``
    Explicit seed list; every scenario carries its own seed, so the
    shard a scenario lands on can never change its result.

The cross-product runs over *every* declared axis, but an axis that is
irrelevant to a family (``policy`` for batch, ``equation`` /
``opt_backend`` for streams) is **collapsed**: only points holding the
irrelevant axis at its first declared value materialise a scenario, so
each distinct scenario appears exactly once and the manifest reports
how many grid points each collapse absorbed.

Exclusion clauses are conjunctions over axis values (``{"family":
"edge", "jobs": [100, 150]}`` drops every edge point at 100 or 150
jobs).  A clause only applies to families that consume every axis it
names, so ``{"policy": "edge"}`` trims online scenarios without
touching batch families.  Contradictory excludes are rejected at the
earliest point they are detectable: a clause naming an unknown axis
or an undeclared value fails validation, a clause that matches no
grid point at all (e.g. one whose axes are irrelevant to every family
it could apply to) and a clause set that eliminates the whole
campaign both fail expansion.

Specs load from JSON (:func:`load_campaign`), from TOML on Python >=
3.11, and from Python via the :class:`CampaignSpec` constructor;
``spec -> to_dict -> from_dict`` is the identity (property-tested), so
the manifest embeds a faithful copy of the spec it was expanded from.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

try:  # Python >= 3.11; JSON remains the lowest common denominator.
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None

from repro.core.dca import ALL_EQUATIONS
from repro.core.exceptions import ModelError
from repro.core.kernels import KERNEL_TIERS
from repro.core.schedulability import resolve_equation
from repro.experiments.parallel import ScenarioSpec
from repro.experiments.runner import APPROACHES
from repro.online.engine import OnlineScenarioSpec
from repro.online.streams import StreamConfig
from repro.store.hashing import full_salt, hash_payload
from repro.workload.edge import EdgeWorkloadConfig
from repro.workload.pipeline import PipelineWorkloadConfig

CAMPAIGN_FORMAT = "repro-campaign"
CAMPAIGN_VERSION = 1
MANIFEST_FORMAT = "repro-campaign-manifest"

#: Families backed by the one-shot batch generators.
BATCH_FAMILIES = ("edge", "pipeline")
#: Families backed by the online stream generators (``replay`` streams
#: depend on an external trace file and are deliberately not
#: campaign-able: campaigns must be self-contained value objects).
ONLINE_FAMILIES = ("poisson", "mmpp", "diurnal")
FAMILIES = BATCH_FAMILIES + ONLINE_FAMILIES

#: Canonical axis order: expansion iterates the cross-product in this
#: order, so scenario order is independent of declaration order.
AXIS_NAMES = ("family", "jobs", "equation", "policy", "opt_backend",
              "shards", "seed")

#: Axes each family actually consumes; the rest are collapsed.
RELEVANT_AXES = {
    **{family: frozenset({"family", "jobs", "equation", "opt_backend",
                          "seed"})
       for family in BATCH_FAMILIES},
    **{family: frozenset({"family", "jobs", "policy", "shards",
                          "seed"})
       for family in ONLINE_FAMILIES},
}

OPT_BACKENDS = ("highs", "branch_bound", "cp")

#: Level-evaluation kernels of the online analyzers (the shared tier
#: registry of :mod:`repro.core.kernels`, same values as
#: :data:`repro.online.cell.CELL_KERNELS`).
KERNELS = KERNEL_TIERS

#: Singleton defaults for axes a spec does not declare.
DEFAULT_AXES = {
    "family": ("edge",),
    "jobs": (10,),
    "equation": ("eq10",),
    "policy": ("preemptive",),
    "opt_backend": ("highs",),
    "shards": (1,),
    "seed": (0,),
}

#: Workload-override sections a spec may carry: constructor kwargs for
#: the batch configs and extra :class:`StreamConfig` fields.
WORKLOAD_SECTIONS = ("edge", "pipeline", "stream")


class CampaignError(ModelError):
    """A campaign spec that cannot be loaded, validated or expanded."""


def _freeze(value):
    """Recursively turn lists into tuples (canonical in-memory form)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return {str(key): _freeze(item) for key, item in value.items()}
    return value


def _thaw(value):
    """Recursively turn tuples into lists (canonical JSON form)."""
    if isinstance(value, (list, tuple)):
        return [_thaw(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _thaw(item) for key, item in value.items()}
    return value


def _as_values(axis: str, raw) -> tuple:
    """Normalise one axis declaration to a non-empty value tuple."""
    values = raw if isinstance(raw, (list, tuple)) else (raw,)
    values = tuple(values)
    if not values:
        raise CampaignError(f"axis {axis!r} declares no values")
    if len(set(values)) != len(values):
        raise CampaignError(
            f"axis {axis!r} declares duplicate values: {list(values)}")
    return values


def _validate_axis_values(axis: str, values: tuple) -> None:
    if axis == "family":
        for value in values:
            if value not in FAMILIES:
                raise CampaignError(
                    f"unknown family {value!r}; expected one of "
                    f"{FAMILIES}")
    elif axis == "jobs":
        for value in values:
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise CampaignError(
                    f"axis 'jobs' needs positive integers, got "
                    f"{value!r}")
    elif axis == "equation":
        for value in values:
            if value not in ALL_EQUATIONS:
                raise CampaignError(
                    f"unknown equation {value!r}; expected one of "
                    f"{ALL_EQUATIONS}")
    elif axis == "policy":
        for value in values:
            try:
                resolve_equation(value)
            except ValueError as error:
                raise CampaignError(str(error)) from None
    elif axis == "opt_backend":
        for value in values:
            if value not in OPT_BACKENDS:
                raise CampaignError(
                    f"unknown opt backend {value!r}; expected one of "
                    f"{OPT_BACKENDS}")
    elif axis == "shards":
        for value in values:
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise CampaignError(
                    f"axis 'shards' needs positive integers, got "
                    f"{value!r}")
    elif axis == "seed":
        for value in values:
            if not isinstance(value, int) or isinstance(value, bool):
                raise CampaignError(
                    f"axis 'seed' needs integers, got {value!r}")


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative scenario-matrix campaign (a pure value object).

    ``axes`` maps axis names to value tuples; axes left out fall back
    to :data:`DEFAULT_AXES` singletons.  ``exclude`` is a tuple of
    conjunction clauses, each mapping axis names to the value tuples
    they drop.  The remaining fields parameterise the materialised
    scenarios uniformly (they are deliberately *not* axes: sweeping
    them would multiply the grid without exercising new analysis
    paths).
    """

    name: str = "campaign"
    axes: dict = field(default_factory=dict)
    exclude: tuple = ()
    #: Batch approaches evaluated per scenario.
    approaches: tuple = APPROACHES
    #: Online engine knobs shared by every stream scenario.
    mode: str = "incremental"
    retry_limit: int = 16
    validate_every: int = 0
    horizon: float = 60.0
    rate: float = 0.25
    dwell_scale: float = 1.0
    #: Level-evaluation kernel of the online analyzers (a knob, not
    #: an axis: decisions are kernel-independent by construction, so
    #: sweeping it would only duplicate scenarios).
    kernel: str = "paired"
    #: Per-family constructor overrides (sections of
    #: :data:`WORKLOAD_SECTIONS`).
    workload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CampaignError(
                f"campaign name must be a non-empty string, got "
                f"{self.name!r}")
        axes = {}
        for axis, raw in dict(self.axes).items():
            if axis not in AXIS_NAMES:
                raise CampaignError(
                    f"unknown axis {axis!r}; expected one of "
                    f"{AXIS_NAMES}")
            values = _as_values(axis, _freeze(raw))
            _validate_axis_values(axis, values)
            axes[axis] = values
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "exclude",
                           self._normalise_excludes(self.exclude))
        approaches = tuple(self.approaches)
        if not approaches:
            raise CampaignError("campaign declares no approaches")
        for approach in approaches:
            if approach not in APPROACHES:
                raise CampaignError(
                    f"unknown approach {approach!r}; expected a "
                    f"subset of {APPROACHES}")
        object.__setattr__(self, "approaches", approaches)
        if self.mode not in ("incremental", "cold"):
            raise CampaignError(
                f"mode must be 'incremental' or 'cold', got "
                f"{self.mode!r}")
        if not isinstance(self.retry_limit, int) or self.retry_limit < 0:
            raise CampaignError(
                f"retry_limit must be a non-negative integer, got "
                f"{self.retry_limit!r}")
        if self.kernel not in KERNELS:
            raise CampaignError(
                f"kernel must be one of {KERNELS}, got "
                f"{self.kernel!r}")
        workload = _freeze(dict(self.workload))
        for section, overrides in workload.items():
            if section not in WORKLOAD_SECTIONS:
                raise CampaignError(
                    f"unknown workload section {section!r}; expected "
                    f"one of {WORKLOAD_SECTIONS}")
            if not isinstance(overrides, dict):
                raise CampaignError(
                    f"workload section {section!r} must be a mapping, "
                    f"got {overrides!r}")
        object.__setattr__(self, "workload", workload)

    # -- normalisation -------------------------------------------------

    def _normalise_excludes(self, raw) -> tuple:
        clauses = []
        for clause in tuple(raw):
            if not isinstance(clause, dict) or not clause:
                raise CampaignError(
                    f"exclude clauses must be non-empty mappings, got "
                    f"{clause!r}")
            normalised = {}
            for axis, values in clause.items():
                if axis not in AXIS_NAMES:
                    raise CampaignError(
                        f"exclude clause names unknown axis {axis!r}; "
                        f"expected one of {AXIS_NAMES}")
                declared = self.axes.get(axis, DEFAULT_AXES[axis])
                values = _as_values(axis, _freeze(values))
                for value in values:
                    if value not in declared:
                        raise CampaignError(
                            f"contradictory exclude: axis {axis!r} "
                            f"never takes value {value!r} (declared "
                            f"values: {list(declared)})")
                normalised[axis] = values
            clauses.append(normalised)
        return tuple(clauses)

    # -- derived views -------------------------------------------------

    def effective_axes(self) -> dict:
        """Declared axes completed with defaults, in canonical order."""
        return {axis: self.axes.get(axis, DEFAULT_AXES[axis])
                for axis in AXIS_NAMES}

    def declared_axes(self) -> tuple:
        """Axis names the spec declares explicitly (canonical order)."""
        return tuple(axis for axis in AXIS_NAMES if axis in self.axes)

    def excluded(self, point: dict) -> bool:
        """True when any exclude clause matches ``point`` entirely.

        A clause only applies to families that actually consume every
        axis it names: ``{"policy": "edge"}`` trims online scenarios
        and leaves batch families alone.  (Without this rule a clause
        naming a family-irrelevant axis would silently delete the
        whole family -- it would kill the one axis-first grid point
        the collapse rule materialises.)
        """
        relevant = RELEVANT_AXES[point["family"]]
        return any(all(axis in relevant and point[axis] in values
                       for axis, values in clause.items())
                   for clause in self.exclude)

    def matching_clauses(self, point: dict) -> "tuple[int, ...]":
        """Indices of the exclude clauses that match ``point`` (same
        relevance rule as :meth:`excluded`)."""
        relevant = RELEVANT_AXES[point["family"]]
        return tuple(
            index for index, clause in enumerate(self.exclude)
            if all(axis in relevant and point[axis] in values
                   for axis, values in clause.items()))

    # -- (de)serialisation ---------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; ``from_dict`` inverts it exactly."""
        return {
            "format": CAMPAIGN_FORMAT,
            "version": CAMPAIGN_VERSION,
            "name": self.name,
            "axes": {axis: _thaw(values)
                     for axis, values in self.axes.items()},
            "exclude": [_thaw(clause) for clause in self.exclude],
            "approaches": list(self.approaches),
            "mode": self.mode,
            "retry_limit": self.retry_limit,
            "validate_every": self.validate_every,
            "horizon": self.horizon,
            "rate": self.rate,
            "dwell_scale": self.dwell_scale,
            "kernel": self.kernel,
            "workload": _thaw(self.workload),
        }

    @classmethod
    def from_dict(cls, data) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a
        hand-written mapping following the same schema; ``format`` /
        ``version`` are optional but validated when present)."""
        if not isinstance(data, dict):
            raise CampaignError(
                f"campaign spec must be a mapping, got "
                f"{type(data).__name__}")
        if data.get("format", CAMPAIGN_FORMAT) != CAMPAIGN_FORMAT:
            raise CampaignError(
                f"not a {CAMPAIGN_FORMAT} payload: "
                f"format={data.get('format')!r}")
        version = data.get("version", CAMPAIGN_VERSION)
        if version != CAMPAIGN_VERSION:
            raise CampaignError(
                f"unsupported campaign version {version!r} "
                f"(supported: {CAMPAIGN_VERSION})")
        known = {"format", "version", "name", "axes", "exclude",
                 "approaches", "mode", "retry_limit", "validate_every",
                 "horizon", "rate", "dwell_scale", "kernel",
                 "workload"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise CampaignError(
                f"unknown campaign spec keys: {unknown} (expected a "
                f"subset of {sorted(known)})")
        kwargs = {}
        for key in ("name", "mode", "retry_limit", "validate_every",
                    "horizon", "rate", "dwell_scale", "kernel"):
            if key in data:
                kwargs[key] = data[key]
        if "axes" in data:
            axes = data["axes"]
            if not isinstance(axes, dict):
                raise CampaignError(
                    f"'axes' must be a mapping of axis name to value "
                    f"list, got {type(axes).__name__}")
            kwargs["axes"] = axes
        if "exclude" in data:
            exclude = data["exclude"]
            if not isinstance(exclude, (list, tuple)):
                raise CampaignError(
                    f"'exclude' must be a list of clauses, got "
                    f"{type(exclude).__name__}")
            kwargs["exclude"] = tuple(exclude)
        if "approaches" in data:
            kwargs["approaches"] = tuple(data["approaches"])
        if "workload" in data:
            if not isinstance(data["workload"], dict):
                raise CampaignError(
                    f"'workload' must be a mapping of sections, got "
                    f"{type(data['workload']).__name__}")
            kwargs["workload"] = data["workload"]
        return cls(**kwargs)


def load_campaign(path) -> CampaignSpec:
    """Load a :class:`CampaignSpec` from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    if not path.exists():
        raise CampaignError(f"no campaign spec at {path}")
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise CampaignError(
                f"malformed JSON in {path}: {error}") from None
    elif suffix == ".toml":
        if tomllib is None:  # pragma: no cover - 3.10 only
            raise CampaignError(
                f"TOML campaign specs need Python >= 3.11 (tomllib); "
                f"convert {path.name} to JSON")
        try:
            data = tomllib.loads(path.read_text())
        except tomllib.TOMLDecodeError as error:
            raise CampaignError(
                f"malformed TOML in {path}: {error}") from None
    else:
        raise CampaignError(
            f"unsupported campaign spec extension {suffix!r} "
            f"(expected .json or .toml)")
    return CampaignSpec.from_dict(data)


def save_campaign(spec: CampaignSpec, path) -> None:
    """Write ``spec`` as pretty-printed JSON (loadable back exactly)."""
    Path(path).write_text(json.dumps(spec.to_dict(), indent=2,
                                     sort_keys=True) + "\n")


# -- expansion ---------------------------------------------------------

@dataclass(frozen=True)
class ExpandedScenario:
    """One materialised grid point of a campaign."""

    #: Relevant-axis values only (irrelevant axes are collapsed away).
    point: dict
    #: ``"batch"`` or ``"online"``.
    kind: str
    #: The runnable spec object.
    spec: "ScenarioSpec | OnlineScenarioSpec"


def _batch_workload(family: str, jobs: int, overrides: dict):
    try:
        if family == "edge":
            return EdgeWorkloadConfig(num_jobs=jobs, **overrides)
        return PipelineWorkloadConfig(num_jobs=jobs, **overrides)
    except (TypeError, ModelError) as error:
        raise CampaignError(
            f"invalid workload overrides for family {family!r}: "
            f"{error}") from None


def _stream_config(spec: CampaignSpec, family: str, jobs: int):
    overrides = dict(spec.workload.get("stream", {}))
    for axis_owned in ("kind", "pool_size"):
        if axis_owned in overrides:
            raise CampaignError(
                f"stream override {axis_owned!r} belongs to the "
                f"'family'/'jobs' axes; declare it there instead")
    kwargs = dict(kind=family, pool_size=jobs, horizon=spec.horizon,
                  rate=spec.rate, dwell_scale=spec.dwell_scale)
    kwargs.update(overrides)  # section overrides win over spec knobs
    try:
        return StreamConfig(**kwargs)
    except (TypeError, ModelError) as error:
        raise CampaignError(
            f"invalid stream configuration for family {family!r}: "
            f"{error}") from None


def _materialise(spec: CampaignSpec, point: dict) -> ExpandedScenario:
    family = point["family"]
    relevant = {axis: point[axis] for axis in AXIS_NAMES
                if axis in RELEVANT_AXES[family]}
    if family in BATCH_FAMILIES:
        workload = _batch_workload(
            family, point["jobs"],
            spec.workload.get(family, {}))
        scenario = ScenarioSpec(seed=point["seed"], workload=workload,
                                generator=family,
                                equation=point["equation"],
                                approaches=spec.approaches,
                                opt_backend=point["opt_backend"])
        return ExpandedScenario(point=relevant, kind="batch",
                                spec=scenario)
    scenario = OnlineScenarioSpec(
        stream=_stream_config(spec, family, point["jobs"]),
        seed=point["seed"], policy=point["policy"], mode=spec.mode,
        retry_limit=spec.retry_limit,
        validate_every=spec.validate_every,
        shards=point["shards"], kernel=spec.kernel)
    return ExpandedScenario(point=relevant, kind="online",
                            spec=scenario)


def expand(spec: CampaignSpec) -> list[ExpandedScenario]:
    """Deterministically materialise the campaign's scenario list.

    Iterates the cross-product of the effective axes in canonical
    :data:`AXIS_NAMES` order, drops excluded points, collapses
    family-irrelevant axes to their first declared value, and returns
    the surviving grid points as runnable scenario specs.  The result
    is a pure function of the spec: same spec, same list, in the same
    order, in every process.
    """
    axes = spec.effective_axes()
    scenarios = []
    clause_matches = [0] * len(spec.exclude)
    for combo in itertools.product(*axes.values()):
        point = dict(zip(axes, combo))
        matched = spec.matching_clauses(point)
        if matched:
            for index in matched:
                clause_matches[index] += 1
            continue
        relevant = RELEVANT_AXES[point["family"]]
        if any(point[axis] != axes[axis][0] for axis in AXIS_NAMES
               if axis not in relevant):
            continue  # collapsed duplicate of the axis-first point
        scenarios.append(_materialise(spec, point))
    dead = [dict(spec.exclude[index])
            for index, count in enumerate(clause_matches)
            if count == 0]
    if dead:
        raise CampaignError(
            f"campaign {spec.name!r}: contradictory exclude clauses "
            f"never match any grid point (every named axis must be "
            f"relevant to at least one matching family): {dead}")
    if not scenarios:
        raise CampaignError(
            f"campaign {spec.name!r}: the exclude clauses eliminate "
            f"every scenario")
    return scenarios


def campaign_hash(spec: CampaignSpec, *, salt: str | None = None) -> str:
    """Content hash identifying the campaign (spec + store salt)."""
    from repro.store.hashing import CACHE_SALT

    effective = CACHE_SALT if salt is None else salt
    return hash_payload({
        "kind": "campaign",
        "salt": full_salt(effective),
        "spec": spec.to_dict(),
    })


def manifest(spec: CampaignSpec, *, salt: str | None = None,
             scenarios: "list[ExpandedScenario] | None" = None) -> dict:
    """Expansion manifest: the spec plus deterministic grid accounting.

    Embeds a faithful ``spec`` copy (round-trips through
    :meth:`CampaignSpec.from_dict`), the campaign content hash, and
    per-axis scenario counts, so a manifest alone is enough to re-run
    or audit the campaign.  Callers that already expanded the spec
    pass ``scenarios`` to avoid materialising the grid twice
    (:func:`expand` is deterministic, so the result is identical).
    """
    axes = spec.effective_axes()
    if scenarios is None:
        scenarios = expand(spec)
    total = 1
    for values in axes.values():
        total *= len(values)
    per_axis: dict = {axis: {} for axis in axes}
    kinds = {"batch": 0, "online": 0}
    for scenario in scenarios:
        kinds[scenario.kind] += 1
        for axis, value in scenario.point.items():
            bucket = per_axis[axis]
            bucket[str(value)] = bucket.get(str(value), 0) + 1
    return {
        "format": MANIFEST_FORMAT,
        "version": CAMPAIGN_VERSION,
        "campaign_hash": campaign_hash(spec, salt=salt),
        "spec": spec.to_dict(),
        "grid_points": total,
        "scenarios": len(scenarios),
        "batch_scenarios": kinds["batch"],
        "online_scenarios": kinds["online"],
        "per_axis": per_axis,
    }
