"""Solver result container shared by all MILP backends."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class SolveStatus(str, Enum):
    """Normalised solver outcome."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node_limit"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """Whether a usable solution vector accompanies this status."""
        return self is SolveStatus.OPTIMAL


@dataclass
class SolveResult:
    """Outcome of a MILP solve.

    Attributes
    ----------
    status:
        Normalised status; ``OPTIMAL`` means a provably optimal (for a
        feasibility problem: any feasible) integral solution was found.
    x:
        Solution vector (None unless ``status.has_solution``).
    objective:
        Objective value at ``x``.
    stats:
        Backend statistics: LP iterations, branch-and-bound nodes, ...
    """

    status: SolveStatus
    x: np.ndarray | None = None
    objective: float | None = None
    stats: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        """Shorthand for ``status.has_solution``."""
        return self.status.has_solution
