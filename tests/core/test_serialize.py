"""Tests for JSON (de)serialisation of job sets."""

import json

import numpy as np
import pytest

from repro.core.exceptions import ModelError
from repro.core.serialize import (
    FORMAT_NAME,
    FORMAT_VERSION,
    dumps,
    job_from_dict,
    job_to_dict,
    jobset_from_dict,
    jobset_to_dict,
    load,
    loads,
    save,
    system_from_dict,
    system_to_dict,
)


class TestRoundTrip:
    def test_jobset_exact_round_trip(self, fig2_jobset):
        clone = loads(dumps(fig2_jobset))
        np.testing.assert_array_equal(clone.P, fig2_jobset.P)
        np.testing.assert_array_equal(clone.R, fig2_jobset.R)
        np.testing.assert_array_equal(clone.D, fig2_jobset.D)
        np.testing.assert_array_equal(clone.A, fig2_jobset.A)
        assert clone.system == fig2_jobset.system

    def test_names_preserved(self, fig2_jobset):
        clone = loads(dumps(fig2_jobset))
        assert [job.name for job in clone.jobs] == \
            [job.name for job in fig2_jobset.jobs]

    def test_system_round_trip(self, fig2_jobset):
        clone = system_from_dict(system_to_dict(fig2_jobset.system))
        assert clone == fig2_jobset.system

    def test_job_round_trip(self, fig2_jobset):
        job = fig2_jobset.jobs[0]
        assert job_from_dict(job_to_dict(job)) == job

    def test_generated_workload_round_trip(self, small_edge_jobset):
        clone = loads(dumps(small_edge_jobset))
        np.testing.assert_array_equal(clone.P, small_edge_jobset.P)
        np.testing.assert_array_equal(clone.shares,
                                      small_edge_jobset.shares)

    def test_file_round_trip(self, fig2_jobset, tmp_path):
        path = tmp_path / "case.json"
        save(fig2_jobset, path)
        clone = load(path)
        np.testing.assert_array_equal(clone.P, fig2_jobset.P)

    def test_analysis_identical_after_round_trip(self, fig2_jobset):
        from repro.core.opdca import opdca

        clone = loads(dumps(fig2_jobset))
        assert opdca(clone, "eq6").feasible == \
            opdca(fig2_jobset, "eq6").feasible


class TestFormatMarkers:
    def test_payload_headers(self, fig2_jobset):
        data = jobset_to_dict(fig2_jobset)
        assert data["format"] == FORMAT_NAME
        assert data["version"] == FORMAT_VERSION

    def test_wrong_format_rejected(self, fig2_jobset):
        data = jobset_to_dict(fig2_jobset)
        data["format"] = "something-else"
        with pytest.raises(ModelError, match="not a"):
            jobset_from_dict(data)

    def test_wrong_version_rejected(self, fig2_jobset):
        data = jobset_to_dict(fig2_jobset)
        data["version"] = 99
        with pytest.raises(ModelError, match="version"):
            jobset_from_dict(data)


class TestMalformedPayloads:
    def test_invalid_json(self):
        with pytest.raises(ModelError, match="invalid JSON"):
            loads("{not json")

    def test_non_object(self):
        with pytest.raises(ModelError, match="object"):
            loads("[1, 2, 3]")

    def test_missing_jobs(self, fig2_jobset):
        data = jobset_to_dict(fig2_jobset)
        del data["jobs"]
        with pytest.raises(ModelError, match="jobs"):
            jobset_from_dict(data)

    def test_missing_stage_field(self):
        with pytest.raises(ModelError, match="malformed system"):
            system_from_dict({"stages": [{"preemptive": True}]})

    def test_missing_job_field(self):
        with pytest.raises(ModelError, match="malformed job"):
            job_from_dict({"deadline": 5.0})

    def test_model_validation_still_applies(self, fig2_jobset):
        data = jobset_to_dict(fig2_jobset)
        data["jobs"][0]["deadline"] = -1.0
        with pytest.raises(ModelError, match="deadline"):
            jobset_from_dict(data)

    def test_json_output_is_valid_json(self, fig2_jobset):
        parsed = json.loads(dumps(fig2_jobset))
        assert len(parsed["jobs"]) == 4
