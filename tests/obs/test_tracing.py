"""The tracing half of repro.obs: spans, exporter, decorators,
report rendering."""

from __future__ import annotations

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_tracing():
    obs.reset_tracing()
    yield
    obs.reset_tracing()


def _exporter(tmp_path) -> obs.JsonlSpanExporter:
    exporter = obs.JsonlSpanExporter(str(tmp_path / "trace.jsonl"))
    obs.configure_exporter(exporter)
    return exporter


class TestDisabled:
    def test_span_is_null_without_exporter(self):
        handle = obs.span("work")
        with handle as inner:
            assert inner is handle
            inner.set_attribute("k", "v")  # no-op, no error
        assert not obs.tracing_enabled()
        assert obs.current_span() is None

    def test_decorators_pass_through(self):
        @obs.trace_step("step")
        def double(x):
            return 2 * x

        @obs.profile_step("prof")
        def triple(x):
            return 3 * x

        assert double(2) == 4
        assert triple(2) == 6


class TestSpans:
    def test_span_tree_nesting_and_export(self, tmp_path):
        exporter = _exporter(tmp_path)
        with obs.span("root", kind="outer") as root:
            with obs.span("child") as child:
                assert obs.current_span() is child
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
            assert obs.current_span() is root
        assert exporter.exported == 2
        spans = obs.load_spans(exporter.path)
        by_name = {span["name"]: span for span in spans}
        assert by_name["child"]["parent_id"] == \
            by_name["root"]["span_id"]
        assert by_name["root"]["parent_id"] is None
        assert by_name["root"]["attrs"]["kind"] == "outer"
        assert by_name["root"]["duration"] >= \
            by_name["child"]["duration"]

    def test_sibling_roots_get_distinct_traces(self, tmp_path):
        exporter = _exporter(tmp_path)
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        spans = obs.load_spans(exporter.path)
        assert spans[0]["trace_id"] != spans[1]["trace_id"]

    def test_exception_marks_error_and_still_exports(self, tmp_path):
        exporter = _exporter(tmp_path)
        with pytest.raises(RuntimeError):
            with obs.span("broken"):
                raise RuntimeError("boom")
        (span,) = obs.load_spans(exporter.path)
        assert span["attrs"]["error"] == "RuntimeError"

    def test_name_can_also_be_an_attribute_key(self, tmp_path):
        # span()'s first parameter is positional-only precisely so
        # attrs named "name" don't collide with it.
        _exporter(tmp_path)
        with obs.span("campaign", name="demo") as step:
            assert step.attrs["name"] == "demo"

    def test_start_trace_adopts_external_trace_id(self, tmp_path):
        exporter = _exporter(tmp_path)
        with obs.start_trace("serve.enqueued", "req-42", uid=7):
            pass
        (span,) = obs.load_spans(exporter.path)
        assert span["trace_id"] == "req-42"
        assert span["parent_id"] is None
        assert span["attrs"]["uid"] == 7

    def test_update_attributes(self, tmp_path):
        exporter = _exporter(tmp_path)
        with obs.span("work") as step:
            step.update_attributes({"a": 1, "b": 2})
        (span,) = obs.load_spans(exporter.path)
        assert span["attrs"] == {"a": 1, "b": 2}


class TestExporter:
    def test_truncates_on_open(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("stale\n")
        obs.JsonlSpanExporter(str(path))
        assert path.read_text() == ""

    def test_lines_are_valid_json(self, tmp_path):
        exporter = _exporter(tmp_path)
        with obs.span("a", value=1.5):
            pass
        for line in open(exporter.path):
            record = json.loads(line)
            assert {"name", "trace_id", "span_id", "parent_id",
                    "start", "duration", "wall_start",
                    "attrs"} <= set(record)

    def test_iter_trace_file_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "a"}\n\n{"name": "b"}\n')
        names = [s["name"] for s in obs.iter_trace_file(str(path))]
        assert names == ["a", "b"]


class TestDecorators:
    def test_trace_step_wraps_in_span(self, tmp_path):
        exporter = _exporter(tmp_path)

        @obs.trace_step("compute")
        def compute(x):
            return x + 1

        assert compute(1) == 2
        (span,) = obs.load_spans(exporter.path)
        assert span["name"] == "compute"

    def test_profile_step_without_env_is_plain_span(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        exporter = _exporter(tmp_path)

        @obs.profile_step("compute")
        def compute(x):
            return x + 1

        assert compute(1) == 2
        (span,) = obs.load_spans(exporter.path)
        assert "profile" not in span["attrs"]

    def test_maybe_profile_attaches_to_enclosing_span(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        exporter = _exporter(tmp_path)
        with obs.span("stage") as stage:
            with obs.maybe_profile(stage):
                sum(range(100))
        (span,) = obs.load_spans(exporter.path)
        assert isinstance(span["attrs"]["profile"], list)

    def test_maybe_profile_noop_without_env(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        exporter = _exporter(tmp_path)
        with obs.span("stage") as stage:
            with obs.maybe_profile(stage):
                pass
        (span,) = obs.load_spans(exporter.path)
        assert "profile" not in span["attrs"]

    def test_profile_step_attaches_cprofile(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        exporter = _exporter(tmp_path)

        @obs.profile_step("compute")
        def compute(n):
            return sum(range(n))

        assert compute(1000) == sum(range(1000))
        (span,) = obs.load_spans(exporter.path)
        profile = span["attrs"]["profile"]
        assert isinstance(profile, list) and profile
        assert any("cumulative" in line or "cumtime" in line
                   for line in profile)


class TestReport:
    def test_renders_tree_and_self_time(self, tmp_path):
        exporter = _exporter(tmp_path)
        with obs.span("outer", items=3):
            with obs.span("inner"):
                pass
        report = obs.render_report(obs.load_spans(exporter.path))
        lines = report.splitlines()
        outer_line = next(line for line in lines
                          if line.lstrip().startswith("outer"))
        inner_line = next(line for line in lines
                          if line.lstrip().startswith("inner"))
        indent = len(outer_line) - len(outer_line.lstrip())
        assert len(inner_line) - len(inner_line.lstrip()) > indent
        assert "items=3" in report
        assert "ms" in report
        assert "by self time" in report

    def test_empty_trace(self):
        assert "no spans" in obs.render_report([])

    def test_top_limits_table(self, tmp_path):
        exporter = _exporter(tmp_path)
        for index in range(5):
            with obs.span(f"work{index}"):
                pass
        report = obs.render_report(
            obs.load_spans(exporter.path), top=2)
        assert "top 2 spans" in report

    def test_orphan_parent_renders_as_root(self):
        spans = [{
            "name": "lonely", "trace_id": "t", "span_id": "s1",
            "parent_id": "missing", "start": 0.0, "duration": 0.5,
            "attrs": {},
        }]
        report = obs.render_report(spans)
        assert "lonely" in report

    def test_profile_section_rendered(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        exporter = _exporter(tmp_path)

        @obs.profile_step("hot")
        def hot():
            return sum(range(100))

        hot()
        report = obs.render_report(obs.load_spans(exporter.path))
        assert "profile for hot" in report
        assert "profile=<attached>" in report
