"""Event-driven streaming admission-control engine.

:class:`OnlineAdmissionEngine` consumes a materialised
:class:`~repro.online.streams.OnlineStream` one timestamped event at a
time and keeps the admitted job set schedulable throughout:

* an **arrival** runs the OPDCA admission controller (Section VI.B of
  the paper, Algorithm 1 with the modified Step 10) over
  ``admitted + {new job}``.  The new job is accepted iff the
  controller keeps it; previously admitted jobs it discards are
  *evicted* (counted as churn) and parked in the retry queue.
* a **departure** frees the leaving job's capacity (and, through
  :meth:`~repro.online.incremental.IncrementalAnalyzer.depart`, purges
  the persistent universe analyzer's memo entries involving the job --
  memory hygiene for ``delay_of`` consumers, not part of the per-event
  fast path), then tries to re-admit parked jobs from the bounded FIFO
  retry queue -- a parked job is re-admitted only if the controller
  accepts the *whole* candidate set (no eviction cascades on
  departures).
* ties are deterministic: departures at time ``t`` are processed
  before arrivals at ``t`` (capacity freed at ``t`` is usable by an
  arrival at ``t``), mirroring the ``_COMPLETE < _ARRIVE`` convention
  of the discrete-event simulator.

Every decision is produced by
:func:`repro.online.incremental.incremental_admission` over a sliced
(warm) subset analysis, and is bitwise identical to rebuilding the
analysis cold and calling
:func:`repro.core.admission.opdca_admission` -- the property tests in
``tests/online`` replay every event cold and compare accepted sets,
orderings and delay vectors exactly.  ``mode="cold"`` makes the
engine itself take the cold path (the reference for the
``BENCH_online`` speedup gate).

The optional validation hook replays accepted epochs through
:class:`~repro.sim.engine.PipelineSimulator` and asserts that no
admitted job misses its deadline under the assigned priorities.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.admission import AdmissionResult, ordering_of_accepted
from repro.core.schedulability import Policy, resolve_equation
from repro.core.system import JobSet
from repro.online.incremental import (
    IncrementalAnalyzer,
    SubsetAnalysis,
    admit,
    admit_all_or_nothing,
    cold_analysis,
)
from repro.online.metrics import (
    ONLINE_RESULT_FORMAT,
    ONLINE_RESULT_VERSION,
    WALL_CLOCK_KEYS,
    EventRecord,
    OnlineMetrics,
    admitted_utilisation,
)
from repro.online.streams import OnlineStream, StreamConfig, generate_stream

#: Event-kind codes: departures at time t are dispatched before
#: arrivals at t (capacity freed at t serves an arrival at t), exactly
#: like ``_COMPLETE < _ARRIVE`` in :mod:`repro.sim.engine`.
EVENT_DEPART, EVENT_ARRIVE = 0, 1

#: Result-store key of one online scenario evaluation; bump when the
#: engine's semantics change so stale cached runs are never served.
ONLINE_CALL_KEY = "online/run@v1"

#: Entry cap of the incremental engine's decision memo (FIFO).
_DECISION_MEMO_LIMIT = 256


@dataclass(frozen=True)
class OnlineScenarioSpec:
    """One fully-determined online scenario (picklable, hashable)."""

    stream: StreamConfig = field(default_factory=StreamConfig)
    seed: int = 0
    policy: str = "preemptive"
    mode: str = "incremental"
    retry_limit: int = 16
    #: Replay every k-th accepted epoch through the simulator (0 = off).
    validate_every: int = 0


@dataclass
class OnlineRunResult:
    """Outcome of one engine run over one stream."""

    seed: int
    stream_kind: str
    policy: str
    mode: str
    horizon: float
    records: list[EventRecord]
    summary: dict
    final_admitted: list[int]
    validation_failures: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready form (exact: floats survive bitwise via repr)."""
        return {
            "format": ONLINE_RESULT_FORMAT,
            "version": ONLINE_RESULT_VERSION,
            "seed": int(self.seed),
            "stream_kind": str(self.stream_kind),
            "policy": str(self.policy),
            "mode": str(self.mode),
            "horizon": float(self.horizon),
            "records": [record.to_dict() for record in self.records],
            "summary": dict(self.summary),
            "final_admitted": [int(u) for u in self.final_admitted],
            "validation_failures": [str(v)
                                    for v in self.validation_failures],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OnlineRunResult":
        if data.get("format") != ONLINE_RESULT_FORMAT or \
                int(data.get("version", -1)) != ONLINE_RESULT_VERSION:
            raise ValueError(
                f"not a {ONLINE_RESULT_FORMAT} "
                f"v{ONLINE_RESULT_VERSION} payload: "
                f"format={data.get('format')!r} "
                f"version={data.get('version')!r}")
        return cls(
            seed=int(data["seed"]),
            stream_kind=str(data["stream_kind"]),
            policy=str(data["policy"]),
            mode=str(data["mode"]),
            horizon=float(data["horizon"]),
            records=[EventRecord.from_dict(r) for r in data["records"]],
            summary=dict(data["summary"]),
            final_admitted=[int(u) for u in data["final_admitted"]],
            validation_failures=[str(v)
                                 for v in data["validation_failures"]])

    def deterministic_dict(self) -> dict:
        """``to_dict`` minus every wall-clock field: identical across
        reruns, worker counts and machines for the same spec."""
        payload = self.to_dict()
        for record in payload["records"]:
            record.pop("latency")
        for key in WALL_CLOCK_KEYS:
            payload["summary"].pop(key)
        return payload


def _sim_preemption_flags(policy: "str | Policy",
                          system) -> list[bool]:
    """Per-stage preemption flags matching the analysis equation."""
    equation = resolve_equation(policy)
    if equation == "eq10":
        return list(system.preemptive_flags)
    if equation in ("eq2", "eq4", "eq5"):
        return [False] * system.num_stages
    return [True] * system.num_stages


class OnlineAdmissionEngine:
    """Replay one stream through the admission controller.

    Parameters
    ----------
    stream:
        The materialised event stream.
    policy:
        Scheduling policy / DCA equation for the admission test.
    mode:
        ``"incremental"`` (sliced caches + lazy level evaluation,
        the default) or ``"cold"`` (full re-analysis per event; the
        benchmark reference).  Decisions are identical either way.
    retry_limit:
        Capacity of the FIFO retry queue; the oldest parked job is
        dropped when a newcomer overflows it.
    validate_every:
        Replay every k-th accepted epoch through the simulator
        (0 disables the hook).
    record_decisions:
        Keep every (event, candidate set, admission result) triple on
        ``decisions`` for the cold-equivalence property tests.
    """

    def __init__(self, stream: OnlineStream, *,
                 policy: "str | Policy" = Policy.PREEMPTIVE,
                 mode: str = "incremental",
                 retry_limit: int = 16,
                 validate_every: int = 0,
                 record_decisions: bool = False) -> None:
        if mode not in ("incremental", "cold"):
            raise ValueError(
                f"mode must be 'incremental' or 'cold', got {mode!r}")
        if retry_limit < 0:
            raise ValueError(
                f"retry_limit must be >= 0, got {retry_limit}")
        self._stream = stream
        self._policy = policy
        self._mode = mode
        self._retry_limit = retry_limit
        self._validate_every = validate_every
        self._universe: JobSet | None = (
            stream.universe() if stream.events else None)
        self._inc: IncrementalAnalyzer | None = (
            IncrementalAnalyzer(self._universe, policy)
            if mode == "incremental" and self._universe is not None
            else None)
        #: (index, kind, uid, candidate, result) log; retry entries
        #: carry ``None`` when the candidate set did not fit whole.
        self.decisions: "list[tuple]" = []
        self._record_decisions = record_decisions
        #: (all_or_nothing, candidate tuple) -> outcome (pure-function
        #: memo; incremental mode only -- cold is stateless by
        #: definition).
        self._decision_memo: "dict[tuple, AdmissionResult | None] | None" = (
            {} if mode == "incremental" else None)

        self._admitted: set[int] = set()
        self._ranks: dict[int, int] = {}
        self._departure_of = {event.uid: event.departure
                              for event in stream.events}
        self._retry: list[int] = []
        self._seen: set[int] = set()
        self._metrics = OnlineMetrics(self._universe)
        self._heaviness: "np.ndarray | None" = None
        self._accept_count = 0
        self._validation_failures: list[str] = []
        #: Wall-clock seconds spent inside the admission decision path
        #: (analysis construction + controller), and how many
        #: decisions were taken -- the quantities the BENCH_online
        #: incremental-vs-cold speedup gate compares.
        self.decision_seconds = 0.0
        self.decision_count = 0

    @property
    def universe(self) -> "JobSet | None":
        return self._universe

    @property
    def incremental(self) -> "IncrementalAnalyzer | None":
        return self._inc

    # -- admission plumbing ------------------------------------------

    def _analysis(self, candidate: "list[int]") -> SubsetAnalysis:
        if self._inc is not None:
            return self._inc.subset(candidate)
        return cold_analysis(self._universe, candidate, self._policy)

    def _decide(self, candidate: "list[int]",
                all_or_nothing: bool = False) -> "AdmissionResult | None":
        """Admission outcome for a candidate uid set (ascending).

        ``all_or_nothing`` (the retry rule) asks only whether the
        whole candidate set fits, returning ``None`` when the full
        controller would reject anyone.

        Admission is a pure function of the candidate set over the
        fixed universe, so the incremental engine memoises outcomes
        keyed on the exact candidate tuple: retry attempts between
        unchanged admitted sets (the common congested pattern) are
        answered without any re-analysis at all.  Cold mode is by
        definition stateless across events and always recomputes.
        """
        start = time.perf_counter()
        try:
            key = (all_or_nothing, tuple(candidate))
            if self._decision_memo is not None and \
                    key in self._decision_memo:
                return self._decision_memo[key]
            analysis = self._analysis(candidate)
            if all_or_nothing:
                result = admit_all_or_nothing(analysis,
                                              mode=self._mode)
            else:
                result = admit(analysis, mode=self._mode)
            if self._decision_memo is not None:
                if len(self._decision_memo) >= _DECISION_MEMO_LIMIT:
                    self._decision_memo.pop(
                        next(iter(self._decision_memo)))
                self._decision_memo[key] = result
            return result
        finally:
            self.decision_seconds += time.perf_counter() - start
            self.decision_count += 1

    def _commit(self, candidate: "list[int]",
                result: AdmissionResult) -> "tuple[list[int], int]":
        """Apply an admission outcome; returns (evicted, rank flips)."""
        accepted = {candidate[i] for i in result.accepted}
        new_ranks = {candidate[i]: int(result.ordering[i])
                     for i in result.accepted}
        evicted = sorted(self._admitted - accepted)
        flips = sum(1 for uid, rank in new_ranks.items()
                    if uid in self._ranks and self._ranks[uid] != rank)
        if self._inc is not None:
            for uid in evicted:
                self._inc.depart(uid)
            for uid in accepted - self._admitted:
                self._inc.arrive(uid)
        self._admitted = accepted
        self._ranks = new_ranks
        self._metrics.ever_admitted |= accepted
        self._metrics.evictions += len(evicted)
        self._metrics.rank_changes += flips
        return evicted, flips

    def _enqueue_retry(self, uid: int) -> None:
        if self._retry_limit == 0:
            self._metrics.retry_drops += 1
            return
        self._retry.append(uid)
        if len(self._retry) > self._retry_limit:
            self._retry.pop(0)
            self._metrics.retry_drops += 1

    def _validate_epoch(self, event_index: int,
                        result: AdmissionResult,
                        candidate: "list[int]") -> None:
        """Replay the accepted epoch through the pipeline simulator."""
        from repro.sim.engine import PipelineSimulator

        if not result.accepted:
            return
        ordering = ordering_of_accepted(result)
        accepted_ids = [candidate[i] for i in result.accepted]
        epoch = self._universe.restrict(accepted_ids)
        flags = _sim_preemption_flags(self._policy, epoch.system)
        sim = PipelineSimulator(epoch, ordering, preemptive=flags).run()
        for position in sim.missed_jobs():
            self._validation_failures.append(
                f"event {event_index}: admitted job "
                f"{accepted_ids[position]} misses its deadline in "
                f"simulation (delay {sim.delays[position]:.3f} > "
                f"D {epoch.D[position]:.3f})")

    def _maybe_validate(self, event_index: int, result: AdmissionResult,
                        candidate: "list[int]") -> None:
        self._accept_count += 1
        if self._validate_every and \
                self._accept_count % self._validate_every == 0:
            self._validate_epoch(event_index, result, candidate)

    def _snapshot(self, index: int, now: float, kind: str, uid: int,
                  decision: str, evicted: "tuple[int, ...]",
                  flips: int, latency: float) -> EventRecord:
        metrics = self._metrics
        record = EventRecord(
            index=index, time=now, kind=kind, uid=uid,
            decision=decision, evicted=evicted,
            admitted=len(self._admitted),
            acceptance_ratio=metrics.acceptance_ratio(),
            rejected_heaviness=metrics.rejected_heaviness(self._seen),
            utilisation=self._utilisation(),
            rank_changes=flips, latency=latency)
        metrics.record(record)
        return record

    def _utilisation(self) -> float:
        if self._universe is None or not self._admitted:
            return 0.0
        if self._heaviness is None:
            from repro.workload.heaviness import heaviness_matrix

            self._heaviness = heaviness_matrix(self._universe)
        mask = np.zeros(self._universe.num_jobs, dtype=bool)
        mask[sorted(self._admitted)] = True
        return admitted_utilisation(self._universe, mask,
                                    heaviness=self._heaviness)

    def _log_decision(self, index: int, kind: str, uid: int,
                      candidate: "list[int]",
                      result: "AdmissionResult | None") -> None:
        if self._record_decisions:
            self.decisions.append(
                (index, kind, uid, tuple(candidate), result))

    # -- event handlers ----------------------------------------------

    def _on_arrival(self, index: int, now: float, uid: int) -> None:
        start = time.perf_counter()
        self._seen.add(uid)
        self._metrics.arrivals += 1
        candidate = sorted(self._admitted | {uid})
        result = self._decide(candidate)
        self._log_decision(index, "arrive", uid, candidate, result)
        evicted, flips = self._commit(candidate, result)
        accepted = uid in self._admitted
        for evictee in evicted:
            self._enqueue_retry(evictee)
        if not accepted:
            self._enqueue_retry(uid)
        latency = time.perf_counter() - start
        self._snapshot(index, now, "arrive", uid,
                       "accept" if accepted else "reject",
                       tuple(evicted), flips, latency)
        if accepted:
            self._maybe_validate(index, result, candidate)

    def _on_departure(self, index: int, now: float, uid: int) -> None:
        start = time.perf_counter()
        if uid in self._admitted:
            self._admitted.discard(uid)
            self._ranks.pop(uid, None)
            if self._inc is not None:
                self._inc.depart(uid)
            latency = time.perf_counter() - start
            self._snapshot(index, now, "depart", uid, "free", (),
                           0, latency)
            self._retry_pass(index, now)
            return
        if uid in self._retry:
            self._retry.remove(uid)
            self._metrics.expired += 1
            decision = "expire"
        else:
            decision = "noop"
        latency = time.perf_counter() - start
        self._snapshot(index, now, "depart", uid, decision, (), 0,
                       latency)

    def _retry_pass(self, index: int, now: float) -> None:
        """Try re-admitting parked jobs (FIFO) after freed capacity.

        A parked job is re-admitted only when the controller accepts
        the *entire* candidate set -- departures never evict."""
        for uid in list(self._retry):
            if self._departure_of[uid] <= now:
                continue  # its own departure event expires it
            start = time.perf_counter()
            candidate = sorted(self._admitted | {uid})
            result = self._decide(candidate, all_or_nothing=True)
            self._log_decision(index, "retry", uid, candidate, result)
            if result is None:
                continue
            _evicted, flips = self._commit(candidate, result)
            self._retry.remove(uid)
            self._metrics.retry_accepts += 1
            latency = time.perf_counter() - start
            self._snapshot(index, now, "retry", uid, "accept", (),
                           flips, latency)
            self._maybe_validate(index, result, candidate)

    # -- driver -------------------------------------------------------

    def run(self) -> OnlineRunResult:
        """Process every event chronologically and return the result."""
        config = self._stream.config
        events = []
        for event in self._stream.events:
            events.append((event.arrival, EVENT_ARRIVE, event.uid))
            events.append((event.departure, EVENT_DEPART, event.uid))
        events.sort()
        for index, (now, kind, uid) in enumerate(events):
            if kind == EVENT_ARRIVE:
                self._on_arrival(index, now, uid)
            else:
                self._on_departure(index, now, uid)
        return OnlineRunResult(
            seed=self._stream.seed,
            stream_kind=config.kind,
            policy=resolve_equation(self._policy),
            mode=self._mode,
            horizon=float(config.horizon),
            records=self._metrics.records,
            summary=self._metrics.summary(),
            final_admitted=sorted(self._admitted),
            validation_failures=self._validation_failures)


def run_online_scenario(spec: OnlineScenarioSpec) -> OnlineRunResult:
    """Materialise and replay one scenario (worker entry point)."""
    stream = generate_stream(spec.stream, seed=spec.seed)
    engine = OnlineAdmissionEngine(
        stream, policy=spec.policy, mode=spec.mode,
        retry_limit=spec.retry_limit,
        validate_every=spec.validate_every)
    return engine.run()


def run_online_scenario_dict(spec: OnlineScenarioSpec,
                             fingerprint: "str | None" = None) -> dict:
    """Picklable ``parallel_map`` shim returning the JSON form.

    ``fingerprint`` carries the replay-trace content digest purely so
    it participates in the work item's content hash (see
    :func:`_replay_fingerprint`); the evaluation itself re-reads the
    file.
    """
    return run_online_scenario(spec).to_dict()


def _replay_fingerprint(spec: OnlineScenarioSpec) -> "str | None":
    """SHA-256 of a replay spec's trace file (None for generated
    streams).  Mixed into the result-store hash so editing the trace
    behind an unchanged path can never serve stale cached runs."""
    if spec.stream.kind != "replay":
        return None
    import hashlib
    from pathlib import Path

    return hashlib.sha256(
        Path(spec.stream.replay_path).read_bytes()).hexdigest()


def online_work_item(spec: OnlineScenarioSpec) -> tuple:
    """The ``parallel_map`` argument tuple of one online scenario.

    This tuple (under :data:`ONLINE_CALL_KEY`) *is* the scenario's
    result-store identity, so anything that needs to predict store
    keys without evaluating -- the campaign runner's ``missing()``
    precheck, external cache audits -- must build them from here
    rather than re-deriving the shape.
    """
    return (spec, _replay_fingerprint(spec))


def evaluate_online(specs, *, n_workers: int = 1,
                    store=None) -> "list[OnlineRunResult]":
    """Evaluate scenarios, preserving input order.

    Shards the specs across worker processes exactly like the batch
    sweeps (:func:`repro.experiments.parallel.parallel_map`) and
    caches per-scenario outcomes in the result store under
    :data:`ONLINE_CALL_KEY` -- replay scenarios are additionally keyed
    on the trace file's content digest -- so interrupted online sweeps
    resume from their last checkpoint.  Deterministic fields are
    identical for any worker count.
    """
    from repro.experiments.parallel import parallel_map

    payloads = parallel_map(
        run_online_scenario_dict,
        [online_work_item(spec) for spec in specs],
        n_workers=n_workers, store=store, key=ONLINE_CALL_KEY)
    return [OnlineRunResult.from_dict(payload) for payload in payloads]
