"""The admission *cell*: the stream-agnostic decision core.

:class:`AdmissionCell` is the admit/evict/retry heart extracted from
the original monolithic online engine.  One cell owns exactly one
universe :class:`~repro.core.system.JobSet`, one incremental analyzer
(or the cold path), one bounded FIFO retry queue and one decision
memo, and exposes pure *event* methods -- :meth:`arrival`,
:meth:`departure`, :meth:`retry_pass` -- that return structured
:class:`CellEvent` outcomes.  Everything stream-shaped (event
ordering, time series, snapshots, validation hooks, run results) lives
in the drivers:

* :class:`~repro.online.engine.OnlineAdmissionEngine` drives a single
  cell over a whole stream -- bitwise identical to the pre-refactor
  engine on every event (property-tested in ``tests/online``);
* :class:`~repro.online.sharded.ShardedAdmissionEngine` hosts one
  cell per resource shard and coordinates cross-shard jobs through
  the cell's two-phase :meth:`reserve` / :meth:`commit_reservation`
  primitives.

Cells speak *local* job indices: the indices of their own universe.
Translation from global stream uids to per-shard locals is the shard
layer's job (:mod:`repro.online.sharded`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro import obs
from repro.core.admission import AdmissionResult
from repro.core.kernels import KERNEL_TIERS
from repro.core.schedulability import Policy
from repro.core.system import JobSet
from repro.online.incremental import (
    IncrementalAnalyzer,
    SubsetAnalysis,
    admit,
    admit_all_or_nothing,
    cold_analysis,
    result_delays,
)

#: Entry cap of a cell's decision memo (FIFO).
DECISION_MEMO_LIMIT = 256

#: Level-evaluation kernels a cell accepts (the shared tier registry
#: of :mod:`repro.core.kernels`; validated here so the CLI knob fails
#: fast at engine construction, not deep in the analyzer).
CELL_KERNELS = KERNEL_TIERS

#: Cell event outcomes counted in the ``repro.obs`` registry.
CELL_DECISIONS = ("accept", "reject", "free", "expire", "noop")


def _cell_instruments():
    """Registry instruments shared by every cell in the process.

    Resolved per cell construction (never per event) so a registry
    ``reset()`` in a test re-registers them; the labelled children
    are pre-resolved into a plain dict to keep the per-event cost at
    one dict lookup plus one guarded increment.
    """
    registry = obs.get_registry()
    decisions = registry.counter(
        "repro_admission_decisions_total",
        "Cell event outcomes by decision kind.",
        labelnames=("decision",))
    return {
        "decisions": {kind: decisions.labels(decision=kind)
                      for kind in CELL_DECISIONS},
        "retry_depth": registry.gauge(
            "repro_admission_retry_depth",
            "Jobs currently parked in retry queues, process-wide."),
        "latency": registry.histogram(
            "repro_decision_seconds",
            "Admission decision latency (controller + analysis)."),
        "slate_size": registry.histogram(
            "repro_decision_slate_size",
            "Coalesced arrival-slate sizes seen by arrival_slate "
            "(1 = an unbatched arrival).",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0)),
        "cache_hits": registry.counter(
            "repro_kernel_cache_hits_total",
            "DelayAnalyzer memo hits inside admission decisions."),
        "cache_misses": registry.counter(
            "repro_kernel_cache_misses_total",
            "DelayAnalyzer memo misses inside admission decisions."),
    }


@dataclass(frozen=True)
class CellEvent:
    """Outcome of one cell event, in the cell's local indices.

    ``decision`` follows the vocabulary of
    :data:`repro.online.metrics.DECISIONS`: arrivals are ``accept`` /
    ``reject``, departures ``free`` / ``expire`` / ``noop``, retry
    admissions ``accept``.
    """

    decision: str
    #: Local uid the event concerns.
    uid: int
    #: Previously admitted jobs this decision evicted, ascending.
    evicted: tuple[int, ...] = ()
    #: Admitted jobs whose (renumbered) priority rank changed.
    flips: int = 0
    #: Retry-queue drops caused by this event (overflow / no parking).
    retry_drops: int = 0
    #: The candidate set the controller saw (arrival/retry only).
    candidate: tuple[int, ...] = ()
    #: The controller outcome (``None`` for a failed all-or-nothing
    #: retry, and for departures, which decide nothing).
    result: "AdmissionResult | None" = None
    #: Evicted jobs the cell was not allowed to park (see the
    #: ``parkable`` hook); the driver owns their retry fate.
    escalated: tuple[int, ...] = ()
    #: Wall-clock seconds the cell spent handling the event (feeds
    #: the driver's per-event latency records; never compared).
    seconds: float = 0.0


@dataclass(frozen=True)
class Reservation:
    """Phase-1 outcome of a two-phase cross-shard admission: the
    candidate set and all-or-nothing result this cell computed, ready
    to be committed (phase 2) or abandoned without any state change."""

    uid: int
    candidate: tuple[int, ...]
    result: "AdmissionResult | None"
    #: Wall-clock seconds phase 1 spent deciding (the shard driver
    #: folds these into its per-event latency records).
    seconds: float = 0.0

    @property
    def accepted(self) -> bool:
        return self.result is not None


class AdmissionCell:
    """Admission decisions over one universe: one cluster's state.

    Event methods and their semantics:

    * :meth:`arrival` runs the full OPDCA controller over
      ``admitted + {uid}`` -- it may *evict* incumbents to make room;
      evictees are parked in the FIFO retry queue (or ``escalated``
      to the driver when the ``parkable`` hook refuses them).
    * :meth:`departure` frees an admitted job's capacity (``free``),
      expires a parked one (``expire``) or ignores an absent one
      (``noop``); it never re-admits -- the driver chooses when to
      run :meth:`retry_pass`, which re-admits parked jobs FIFO under
      the *all-or-nothing* rule (the whole candidate set must fit;
      retries never evict).
    * :meth:`reserve` / :meth:`commit_reservation` are the two-phase
      primitives of cross-shard admission: phase 1 computes a
      no-eviction all-or-nothing decision *without touching cell
      state* (so a coordinator may abandon it freely, e.g. when a
      sibling shard refuses or the global certificate fails); phase 2
      applies it, and is only valid while the admitted set still
      equals the one the reservation was computed over.

    Decisions are pure functions of the candidate set over the fixed
    universe, memoised in incremental mode (see :meth:`decide`), so
    an immediately committed reservation costs no re-analysis.

    Parameters
    ----------
    universe:
        Every job this cell can ever see (local index == local uid).
    policy:
        Scheduling policy / DCA equation for the admission test.
    mode:
        ``"incremental"`` (sliced caches + lazy level evaluation) or
        ``"cold"`` (full re-analysis per decision).  Decisions are
        identical either way.
    retry_limit:
        Capacity of the FIFO retry queue; the oldest parked job is
        dropped when a newcomer overflows it, and ``0`` disables
        parking entirely.
    departure_of:
        Local uid -> departure time; the retry pass skips jobs whose
        own departure would expire them at or before the current time.
    cache:
        Optional pre-built segment cache for ``universe`` (the shard
        layer passes a lazily sliced view of one global cache).
    kernel:
        Level-evaluation kernel of the incremental analyzers.
    parkable:
        Optional predicate deciding which local uids the cell may park
        in its retry queue.  Jobs refused by the predicate are
        reported as ``escalated`` on the outcome instead (the shard
        layer uses this to keep cross-shard jobs out of per-cell
        queues, where a lone cell could re-admit them unilaterally).
    """

    def __init__(self, universe: "JobSet | None", *,
                 policy: "str | Policy" = Policy.PREEMPTIVE,
                 mode: str = "incremental",
                 retry_limit: int = 16,
                 departure_of: "Mapping[int, float] | None" = None,
                 cache=None,
                 kernel: str = "paired",
                 parkable: "Callable[[int], bool] | None" = None) -> None:
        if mode not in ("incremental", "cold"):
            raise ValueError(
                f"mode must be 'incremental' or 'cold', got {mode!r}")
        if retry_limit < 0:
            raise ValueError(
                f"retry_limit must be >= 0, got {retry_limit}")
        if kernel not in CELL_KERNELS:
            raise ValueError(
                f"kernel must be one of {CELL_KERNELS}, got {kernel!r}")
        self._universe = universe
        self._policy = policy
        self._mode = mode
        self._retry_limit = retry_limit
        self._departure_of = dict(departure_of or {})
        self._parkable = parkable
        self._inc: "IncrementalAnalyzer | None" = (
            IncrementalAnalyzer(universe, policy, cache=cache,
                                kernel=kernel)
            if mode == "incremental" and universe is not None
            else None)
        #: (all_or_nothing, candidate tuple) -> outcome (pure-function
        #: memo; incremental mode only -- cold is stateless by
        #: definition).
        self._decision_memo: "dict[tuple, AdmissionResult | None] | None" = (
            {} if mode == "incremental" else None)
        self._admitted: set[int] = set()
        self._ranks: dict[int, int] = {}
        self._retry: list[int] = []
        #: Wall-clock seconds spent inside the admission decision path
        #: (analysis construction + controller), and how many
        #: decisions were taken -- the quantities the BENCH_online
        #: speedup gates compare.
        self.decision_seconds = 0.0
        self.decision_count = 0
        #: Decision-memo and kernel-memo telemetry (see
        #: :meth:`obs_stats`).
        self.memo_hits = 0
        self.memo_misses = 0
        self.kernel_cache = {"hits": 0, "misses": 0}
        self.outcome_counts = {kind: 0 for kind in CELL_DECISIONS}
        self._obs = _cell_instruments()

    # -- read-only state ----------------------------------------------

    @property
    def universe(self) -> "JobSet | None":
        return self._universe

    @property
    def incremental(self) -> "IncrementalAnalyzer | None":
        return self._inc

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def admitted(self) -> "frozenset[int]":
        return frozenset(self._admitted)

    @property
    def ranks(self) -> "dict[int, int]":
        return dict(self._ranks)

    @property
    def retry_queue(self) -> "tuple[int, ...]":
        return tuple(self._retry)

    def is_admitted(self, uid: int) -> bool:
        return uid in self._admitted

    # -- admission plumbing -------------------------------------------

    def _analysis(self, candidate: "list[int]") -> SubsetAnalysis:
        if self._inc is not None:
            return self._inc.subset(candidate)
        return cold_analysis(self._universe, candidate, self._policy)

    def decide(self, candidate: "list[int]",
               all_or_nothing: bool = False) -> "AdmissionResult | None":
        """Admission outcome for a candidate uid set (ascending).

        ``all_or_nothing`` (the retry / reservation rule) asks only
        whether the whole candidate set fits, returning ``None`` when
        the full controller would reject anyone.

        Admission is a pure function of the candidate set over the
        fixed universe, so the incremental cell memoises outcomes
        keyed on the exact candidate tuple: retry attempts between
        unchanged admitted sets (the common congested pattern) are
        answered without any re-analysis at all.  Cold mode is by
        definition stateless across events and always recomputes.
        """
        start = time.perf_counter()
        try:
            key = (all_or_nothing, tuple(candidate))
            if self._decision_memo is not None and \
                    key in self._decision_memo:
                self.memo_hits += 1
                return self._decision_memo[key]
            self.memo_misses += 1
            analysis = self._analysis(candidate)
            if all_or_nothing:
                result = admit_all_or_nothing(analysis,
                                              mode=self._mode)
            else:
                result = admit(analysis, mode=self._mode)
            stats = analysis.test.analyzer.cache_stats()
            hits = sum(stats["hits"].values())
            misses = sum(stats["misses"].values())
            self.kernel_cache["hits"] += hits
            self.kernel_cache["misses"] += misses
            self._obs["cache_hits"].inc(hits)
            self._obs["cache_misses"].inc(misses)
            if self._decision_memo is not None:
                if result is not None and self._inc is not None:
                    # Park a thin rebuilder instead of the
                    # controller's own thunk, which closes over the
                    # whole per-event ``SubsetAnalysis`` (restricted
                    # caches and all) and would pin up to
                    # DECISION_MEMO_LIMIT of them alive.  The rebuild
                    # is bitwise identical to the eager vector
                    # (:func:`repro.online.incremental.result_delays`).
                    inc = self._inc
                    cand = tuple(candidate)
                    result.rebind_delays(
                        lambda: result_delays(inc.subset(list(cand)),
                                              result))
                if len(self._decision_memo) >= DECISION_MEMO_LIMIT:
                    self._decision_memo.pop(
                        next(iter(self._decision_memo)))
                self._decision_memo[key] = result
            return result
        finally:
            elapsed = time.perf_counter() - start
            self.decision_seconds += elapsed
            self.decision_count += 1
            self._obs["latency"].observe(elapsed)

    def _commit(self, candidate: "list[int]",
                result: AdmissionResult) -> "tuple[list[int], int]":
        """Apply an admission outcome; returns (evicted, rank flips)."""
        accepted = {candidate[i] for i in result.accepted}
        new_ranks = {candidate[i]: int(result.ordering[i])
                     for i in result.accepted}
        evicted = sorted(self._admitted - accepted)
        flips = sum(1 for uid, rank in new_ranks.items()
                    if uid in self._ranks and self._ranks[uid] != rank)
        if self._inc is not None:
            for uid in evicted:
                self._inc.depart(uid)
            for uid in accepted - self._admitted:
                self._inc.arrive(uid)
        self._admitted = accepted
        self._ranks = new_ranks
        return evicted, flips

    def _enqueue_retry(self, uid: int) -> "tuple[int, bool]":
        """Park ``uid``; returns (drops caused, escalated?)."""
        if self._parkable is not None and not self._parkable(uid):
            return 0, True
        if self._retry_limit == 0:
            return 1, False
        self._retry.append(uid)
        if len(self._retry) > self._retry_limit:
            self._retry.pop(0)
            return 1, False
        self._obs["retry_depth"].inc()
        return 0, False

    def _count(self, decision: str) -> None:
        """Tally one event outcome (cell-local + registry)."""
        self.outcome_counts[decision] += 1
        self._obs["decisions"][decision].inc()

    def obs_stats(self) -> dict:
        """Telemetry snapshot for spans and engine summaries."""
        stats = {
            "decisions": self.decision_count,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "kernel_cache_hits": self.kernel_cache["hits"],
            "kernel_cache_misses": self.kernel_cache["misses"],
            "retry_depth": len(self._retry),
            "outcomes": dict(self.outcome_counts),
        }
        if self._inc is not None:
            sizes = self._inc.analyzer.memo_sizes()
            stats["universe_memo_sizes"] = sizes
        return stats

    # -- event methods ------------------------------------------------

    def arrival(self, uid: int) -> CellEvent:
        """Admit ``uid`` through the full controller (evictions
        allowed); rejected/evicted jobs are parked in the retry queue
        (or escalated, see ``parkable``)."""
        start = time.perf_counter()
        candidate = sorted(self._admitted | {uid})
        result = self.decide(candidate)
        evicted, flips = self._commit(candidate, result)
        accepted = uid in self._admitted
        drops = 0
        escalated: list[int] = []
        for evictee in evicted:
            dropped, up = self._enqueue_retry(evictee)
            drops += dropped
            if up:
                escalated.append(evictee)
        if not accepted:
            dropped, up = self._enqueue_retry(uid)
            drops += dropped
            if up:
                escalated.append(uid)
        decision = "accept" if accepted else "reject"
        self._count(decision)
        return CellEvent(
            decision=decision, uid=uid,
            evicted=tuple(evicted), flips=flips, retry_drops=drops,
            candidate=tuple(candidate), result=result,
            escalated=tuple(escalated),
            seconds=time.perf_counter() - start)

    def arrival_slate(self, uids: "list[int]") -> "list[CellEvent]":
        """Admit a slate of same-wakeup arrivals through one screen.

        One all-or-nothing decision over ``admitted | slate`` settles
        the whole slate when it passes: under the float-monotone
        admission bounds, feasibility of the union implies feasibility
        of every prefix ``admitted | slate[:k]`` (infeasibility is
        antitone in the job set), so the sequential engine would have
        accepted each arrival in turn with no evictions and finished
        on exactly this candidate set -- the slate's single commit
        lands on the identical admitted set, ranks and decision for
        every member, with one controller run instead of ``len(uids)``.
        When the screen fails, the slate falls back to the stock
        sequential :meth:`arrival` per uid (bitwise identical to the
        unbatched engine, evictions and retries included).

        Returns one event per uid, in slate order.  On the batched
        fast path, intermediate events carry ``result=None`` and
        ``flips=0``; the final event carries the certified union
        result and the *net* rank-flip count of the slate's single
        commit.  That net count can undercount a sequential replay's
        per-arrival flip sum (transient back-and-forth flips inside
        the burst cancel) -- the one deliberate telemetry difference
        of the micro-batched path; decisions, admitted sets and every
        other metric are identical.
        """
        uids = list(uids)
        self._obs["slate_size"].observe(len(uids))
        if len(uids) == 1:
            return [self.arrival(uids[0])]
        if self._retry:
            # Congestion gate: a non-empty retry queue means recent
            # arrivals were already being rejected, so the whole-slate
            # screen would almost certainly fail and its cost would be
            # pure overhead on top of the sequential fallback it would
            # trigger anyway.  Skipping it is a pure path choice
            # between two decision-identical evaluations.
            return [self.arrival(uid) for uid in uids]
        start = time.perf_counter()
        candidate = sorted(self._admitted | set(uids))
        screen = self.decide(candidate, all_or_nothing=True)
        if screen is None:
            return [self.arrival(uid) for uid in uids]
        evicted, flips = self._commit(candidate, screen)
        assert not evicted  # all-or-nothing admissions never evict
        seconds = time.perf_counter() - start
        events = []
        last = uids[-1]
        for uid in uids:
            self._count("accept")
            events.append(CellEvent(
                decision="accept", uid=uid,
                candidate=tuple(candidate),
                result=screen if uid == last else None,
                flips=flips if uid == last else 0,
                seconds=seconds if uid == last else 0.0))
        return events

    def departure(self, uid: int) -> CellEvent:
        """Free ``uid``'s capacity (or expire/ignore an absent job).
        The driver decides whether to run a retry pass afterwards."""
        start = time.perf_counter()
        if uid in self._admitted:
            self._admitted.discard(uid)
            self._ranks.pop(uid, None)
            if self._inc is not None:
                self._inc.depart(uid)
            self._count("free")
            return CellEvent(decision="free", uid=uid,
                             seconds=time.perf_counter() - start)
        if uid in self._retry:
            self._retry.remove(uid)
            self._obs["retry_depth"].dec()
            self._count("expire")
            return CellEvent(decision="expire", uid=uid,
                             seconds=time.perf_counter() - start)
        self._count("noop")
        return CellEvent(decision="noop", uid=uid,
                         seconds=time.perf_counter() - start)

    def retry_pass(self, now: float) -> "Iterator[CellEvent]":
        """Try re-admitting parked jobs (FIFO) after freed capacity.

        A parked job is re-admitted only when the controller accepts
        the *entire* candidate set -- retries never evict.  Yields one
        event per attempt (``accept`` on re-admission, ``reject`` with
        ``result=None`` when the set did not fit whole; failed
        attempts stay parked) *as it goes*, so a driver observes the
        admitted set mid-pass exactly as it evolves.  Consume the
        iterator fully, or the pass stops where you stop."""
        for uid in list(self._retry):
            if self._departure_of.get(uid, float("inf")) <= now:
                continue  # its own departure event expires it
            start = time.perf_counter()
            candidate = sorted(self._admitted | {uid})
            result = self.decide(candidate, all_or_nothing=True)
            if result is None:
                self._count("reject")
                yield CellEvent(
                    decision="reject", uid=uid,
                    candidate=tuple(candidate), result=None,
                    seconds=time.perf_counter() - start)
                continue
            _evicted, flips = self._commit(candidate, result)
            self._retry.remove(uid)
            self._obs["retry_depth"].dec()
            self._count("accept")
            yield CellEvent(
                decision="accept", uid=uid, flips=flips,
                candidate=tuple(candidate), result=result,
                seconds=time.perf_counter() - start)

    # -- two-phase reservation (cross-shard admission) ----------------

    def reserve(self, uid: int) -> Reservation:
        """Phase 1: can ``uid`` join the admitted set *whole*, with no
        evictions?  Pure -- no cell state changes; the decision is
        memoised exactly like any other, so an immediately following
        :meth:`commit_reservation` costs no re-analysis."""
        start = time.perf_counter()
        candidate = sorted(self._admitted | {uid})
        result = self.decide(candidate, all_or_nothing=True)
        return Reservation(uid=uid, candidate=tuple(candidate),
                           result=result,
                           seconds=time.perf_counter() - start)

    def commit_reservation(self, reservation: Reservation) -> CellEvent:
        """Phase 2: apply a successful reservation.  Must only be
        called while the admitted set still equals the one the
        reservation was computed over (the single-threaded shard
        driver guarantees this by committing immediately)."""
        start = time.perf_counter()
        if reservation.result is None:
            raise ValueError(
                f"cannot commit a failed reservation for uid "
                f"{reservation.uid}")
        if tuple(sorted(self._admitted | {reservation.uid})) != \
                reservation.candidate:
            raise ValueError(
                f"stale reservation for uid {reservation.uid}: the "
                f"admitted set changed since phase 1")
        evicted, flips = self._commit(list(reservation.candidate),
                                      reservation.result)
        assert not evicted  # all-or-nothing reservations never evict
        return CellEvent(decision="accept", uid=reservation.uid,
                         flips=flips, candidate=reservation.candidate,
                         result=reservation.result,
                         seconds=time.perf_counter() - start)

    # -- shard-driver hooks -------------------------------------------

    def evict(self, uid: int) -> bool:
        """Forcibly remove an admitted job (cross-shard revocation:
        the job lost its seat on another shard, so its reservation
        here is void).  Returns whether the job was present."""
        if uid not in self._admitted:
            return False
        self._admitted.discard(uid)
        self._ranks.pop(uid, None)
        if self._inc is not None:
            self._inc.depart(uid)
        return True

    def unpark(self, uid: int) -> bool:
        """Silently drop ``uid`` from the retry queue (no expiry
        accounting); returns whether it was parked."""
        if uid in self._retry:
            self._retry.remove(uid)
            self._obs["retry_depth"].dec()
            return True
        return False
