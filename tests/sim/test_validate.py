"""Tests for the independent trace validator (failure injection)."""

import numpy as np
import pytest

from repro.core.job import Job
from repro.core.system import JobSet, MSMRSystem, Stage
from repro.sim.engine import simulate
from repro.sim.policies import TotalOrderPolicy
from repro.sim.trace import ExecutionInterval, Trace
from repro.sim.validate import validate_trace


@pytest.fixture
def jobset():
    system = MSMRSystem([Stage(1), Stage(1)])
    jobs = [Job(processing=(3, 2), deadline=30, resources=(0, 0)),
            Job(processing=(1, 4), deadline=30, resources=(0, 0))]
    return JobSet(system, jobs)


def good_trace():
    """Hand-built valid schedule for the fixture (J0 > J1)."""
    trace = Trace()
    add = trace.add
    add(ExecutionInterval(job=0, stage=0, resource=0, start=0, end=3,
                          completed=True))
    add(ExecutionInterval(job=1, stage=0, resource=0, start=3, end=4,
                          completed=True))
    add(ExecutionInterval(job=0, stage=1, resource=0, start=3, end=5,
                          completed=True))
    add(ExecutionInterval(job=1, stage=1, resource=0, start=5, end=9,
                          completed=True))
    return trace


class TestValidTraces:
    def test_hand_built_trace_passes(self, jobset):
        report = validate_trace(jobset, good_trace(),
                                policy=np.array([1, 2]))
        assert report.ok, report.format()

    def test_simulator_output_passes_all_checks(self, jobset):
        priorities = np.array([1, 2])
        result = simulate(jobset, priorities)
        report = validate_trace(jobset, result.trace, policy=priorities)
        assert report.ok, report.format()

    def test_simulator_output_with_preemption(self):
        system = MSMRSystem([Stage(1)])
        jobs = [Job(processing=(10,), deadline=50, resources=(0,)),
                Job(processing=(2,), deadline=10, arrival=3.0,
                    resources=(0,))]
        jobset = JobSet(system, jobs)
        priorities = np.array([2, 1])
        result = simulate(jobset, priorities)
        assert result.trace.preemption_count() == 1
        report = validate_trace(jobset, result.trace, policy=priorities)
        assert report.ok, report.format()

    def test_format_mentions_validity(self, jobset):
        report = validate_trace(jobset, good_trace())
        assert "valid" in report.format()


class TestFailureInjection:
    def test_missing_execution_detected(self, jobset):
        trace = good_trace()
        trace.intervals = trace.intervals[:-1]  # drop J1's stage 1
        report = validate_trace(jobset, trace)
        assert not report.ok
        assert report.by_rule("conservation")

    def test_wrong_resource_detected(self, jobset):
        trace = good_trace()
        bad = trace.intervals[0]
        trace.intervals[0] = ExecutionInterval(
            job=bad.job, stage=bad.stage, resource=5,
            start=bad.start, end=bad.end, completed=True)
        report = validate_trace(jobset, trace)
        assert any("mapped to" in v.message
                   for v in report.by_rule("conservation"))

    def test_short_execution_detected(self, jobset):
        trace = good_trace()
        first = trace.intervals[0]
        trace.intervals[0] = ExecutionInterval(
            job=first.job, stage=first.stage, resource=first.resource,
            start=first.start, end=first.end - 1.0, completed=True)
        report = validate_trace(jobset, trace)
        assert any("executed" in v.message
                   for v in report.by_rule("conservation"))

    def test_double_completion_detected(self, jobset):
        trace = good_trace()
        trace.add(ExecutionInterval(job=0, stage=0, resource=0,
                                    start=20, end=20, completed=True))
        report = validate_trace(jobset, trace)
        assert any("times" in v.message
                   for v in report.by_rule("conservation"))

    def test_overlap_detected(self, jobset):
        trace = good_trace()
        second = trace.intervals[1]
        trace.intervals[1] = ExecutionInterval(
            job=second.job, stage=0, resource=0, start=2.0, end=3.0,
            completed=True)
        report = validate_trace(jobset, trace)
        assert report.by_rule("exclusion")

    def test_precedence_violation_detected(self, jobset):
        trace = Trace()
        # J0 runs stage 1 before stage 0 completes.
        trace.add(ExecutionInterval(job=0, stage=0, resource=0,
                                    start=0, end=3, completed=True))
        trace.add(ExecutionInterval(job=0, stage=1, resource=0,
                                    start=1, end=3, completed=True))
        trace.add(ExecutionInterval(job=1, stage=0, resource=0,
                                    start=3, end=4, completed=True))
        trace.add(ExecutionInterval(job=1, stage=1, resource=0,
                                    start=4, end=8, completed=True))
        report = validate_trace(jobset, trace)
        assert report.by_rule("precedence")

    def test_early_start_detected(self):
        system = MSMRSystem([Stage(1)])
        jobs = [Job(processing=(2,), deadline=10, arrival=5.0,
                    resources=(0,))]
        jobset = JobSet(system, jobs)
        trace = Trace()
        trace.add(ExecutionInterval(job=0, stage=0, resource=0,
                                    start=0, end=2, completed=True))
        report = validate_trace(jobset, trace)
        assert any("arrival" in v.message
                   for v in report.by_rule("precedence"))

    def test_priority_inversion_detected(self, jobset):
        """J1 runs to completion first although J0 outranks it at a
        preemptive stage."""
        trace = Trace()
        trace.add(ExecutionInterval(job=1, stage=0, resource=0,
                                    start=0, end=1, completed=True))
        trace.add(ExecutionInterval(job=1, stage=1, resource=0,
                                    start=1, end=5, completed=True))
        trace.add(ExecutionInterval(job=0, stage=0, resource=0,
                                    start=1, end=4, completed=True))
        trace.add(ExecutionInterval(job=0, stage=1, resource=0,
                                    start=5, end=7, completed=True))
        report = validate_trace(jobset, trace,
                                policy=TotalOrderPolicy([1, 2]))
        assert report.by_rule("priority")

    def test_nonpreemptive_blocking_is_legal(self):
        """A lower-priority job that started earlier may finish at a
        non-preemptive stage."""
        system = MSMRSystem([Stage(1, preemptive=False)])
        jobs = [Job(processing=(3,), deadline=20, arrival=1.0,
                    resources=(0,)),
                Job(processing=(5,), deadline=20, arrival=0.0,
                    resources=(0,))]
        jobset = JobSet(system, jobs)
        priorities = np.array([1, 2])
        result = simulate(jobset, priorities)
        report = validate_trace(jobset, result.trace, policy=priorities)
        assert report.ok, report.format()

    def test_late_nonpreemptive_dispatch_detected(self):
        """Starting a lower-priority job while a higher one waits is
        illegal even without preemption."""
        system = MSMRSystem([Stage(1, preemptive=False)])
        jobs = [Job(processing=(3,), deadline=20, resources=(0,)),
                Job(processing=(5,), deadline=20, resources=(0,))]
        jobset = JobSet(system, jobs)
        trace = Trace()
        trace.add(ExecutionInterval(job=1, stage=0, resource=0,
                                    start=2.0, end=7.0, completed=True))
        trace.add(ExecutionInterval(job=0, stage=0, resource=0,
                                    start=7.0, end=10.0,
                                    completed=True))
        report = validate_trace(jobset, trace,
                                policy=np.array([1, 2]))
        assert report.by_rule("priority")


class TestValidatorOnWorkloads:
    def test_edge_case_traces_validate(self, small_edge_jobset):
        jobset = small_edge_jobset
        priorities = np.arange(1, jobset.num_jobs + 1)
        result = simulate(jobset, priorities)
        report = validate_trace(jobset, result.trace, policy=priorities)
        assert report.ok, report.format()
