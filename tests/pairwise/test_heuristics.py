"""Tests for the future-work pairwise strategies (LMR, local search,
OPA-guided hybrid)."""

import numpy as np
import pytest

from repro.core.dca import DelayAnalyzer
from repro.core.opdca import opdca
from repro.core.system import JobSet
from repro.pairwise.heuristics import (
    laxity_assignment,
    lmr,
    local_search,
    opa_guided,
)
from repro.pairwise.opt import opt
from repro.workload.random_jobs import RandomInstanceConfig, random_jobset


def moderate_instance(seed):
    return random_jobset(
        RandomInstanceConfig(num_jobs=6, num_stages=3,
                             resources_per_stage=2,
                             slack_range=(0.7, 1.8)), seed=seed)


class TestLaxityAssignment:
    def test_orientation_by_laxity(self):
        jobset = JobSet.single_resource(
            processing=[(10, 10), (1, 1)], deadlines=[25, 20])
        # Laxities: J0 = 5, J1 = 18 -> J0 wins despite larger deadline.
        assignment = laxity_assignment(jobset)
        assert assignment.is_higher(0, 1)

    def test_tie_falls_back_to_deadline_then_index(self):
        jobset = JobSet.single_resource(
            processing=[(5, 5), (5, 5)], deadlines=[20, 20])
        assignment = laxity_assignment(jobset)
        assert assignment.is_higher(0, 1)

    def test_acyclic(self, fig2_jobset):
        assert laxity_assignment(fig2_jobset).is_acyclic()


class TestHeuristicSoundness:
    @pytest.mark.parametrize("heuristic", [lmr, local_search, opa_guided],
                             ids=["lmr", "local_search", "opa_guided"])
    @pytest.mark.parametrize("seed", range(10))
    def test_feasible_results_verify(self, heuristic, seed):
        jobset = moderate_instance(seed)
        analyzer = DelayAnalyzer(jobset)
        result = heuristic(jobset, "eq6", analyzer=analyzer)
        if result.feasible:
            delays = analyzer.delays_for_pairwise(
                result.assignment.matrix(), equation="eq6")
            assert (delays <= jobset.D + 1e-9).all()

    @pytest.mark.parametrize("heuristic", [lmr, local_search, opa_guided],
                             ids=["lmr", "local_search", "opa_guided"])
    @pytest.mark.parametrize("seed", range(10))
    def test_never_beats_opt(self, heuristic, seed):
        jobset = moderate_instance(seed)
        analyzer = DelayAnalyzer(jobset)
        if heuristic(jobset, "eq6", analyzer=analyzer).feasible:
            assert opt(jobset, "eq6", backend="cp",
                       analyzer=analyzer).feasible


class TestOPAGuided:
    def test_feasible_ordering_accepted_directly(self):
        for seed in range(10):
            jobset = moderate_instance(seed)
            if opdca(jobset, "eq6").feasible:
                result = opa_guided(jobset, "eq6")
                assert result.feasible
                assert result.stats["opa_assigned"] == jobset.num_jobs

    def test_partial_ordering_reported(self, fig2_jobset):
        result = opa_guided(fig2_jobset, "eq6")
        # OPDCA fails on Figure 2 at the very first level (no job can
        # take the lowest priority), so the hybrid degenerates to pure
        # DM + repair there.
        assert result.stats["opa_assigned"] == 0
        assert not result.feasible

    def test_partial_prefix_used_when_opa_gets_stuck_midway(self):
        """Find an instance where OPA assigns some but not all
        priorities and check the hybrid keeps that suffix."""
        for seed in range(60):
            jobset = moderate_instance(seed)
            from repro.core.opa import audsley
            from repro.core.schedulability import SDCA
            opa = audsley(jobset.num_jobs,
                          SDCA(jobset, "eq6").is_schedulable)
            if not opa.feasible and 0 < len(opa.order):
                result = opa_guided(jobset, "eq6")
                assert result.stats["opa_assigned"] == len(opa.order)
                return
        pytest.skip("no partially-assignable instance in seed range")


class TestLocalSearch:
    def test_finds_cyclic_solution_on_figure2(self, fig2_jobset):
        """Local search can reach the cyclic region DMR cannot: the
        Figure 2 instance has only cyclic feasible assignments."""
        result = local_search(fig2_jobset, "eq6", restarts=6, seed=3)
        if result.feasible:
            assert not result.assignment.is_acyclic()
        # Either way the stats are well-formed.
        assert result.stats["residual_excess"] >= 0.0

    def test_deterministic_given_seed(self, fig2_jobset):
        a = local_search(fig2_jobset, "eq6", seed=1)
        b = local_search(fig2_jobset, "eq6", seed=1)
        assert a.feasible == b.feasible
        assert np.allclose(a.delays, b.delays)

    def test_respects_max_steps(self):
        jobset = moderate_instance(0)
        result = local_search(jobset, "eq6", max_steps=0, restarts=1)
        assert result.stats["steps"] == 0
