"""Tests for the delay-bound explanation API."""

import numpy as np
import pytest

from repro.core.dca import DelayAnalyzer
from repro.core.explain import explain_delay
from repro.workload.random_jobs import RandomInstanceConfig, random_jobset
from tests.conftest import as_mask


class TestExactness:
    """The breakdown must sum to the analyzer's bound, always."""

    @pytest.mark.parametrize("equation", ["eq3", "eq4", "eq5", "eq6",
                                          "eq10"])
    @pytest.mark.parametrize("seed", range(6))
    def test_msmr_equations(self, equation, seed):
        jobset = random_jobset(
            RandomInstanceConfig(num_jobs=6, num_stages=3,
                                 resources_per_stage=2,
                                 max_offset=4.0), seed=seed)
        analyzer = DelayAnalyzer(jobset)
        rng = np.random.default_rng(seed)
        priority = rng.permutation(6) + 1
        for i in range(6):
            higher = priority < priority[i]
            lower = priority > priority[i]
            breakdown = explain_delay(analyzer, i, higher, lower,
                                      equation=equation)
            expected = analyzer.delay_bound(i, higher, lower,
                                            equation=equation)
            assert breakdown.total == pytest.approx(expected)

    @pytest.mark.parametrize("equation", ["eq1", "eq2"])
    @pytest.mark.parametrize("seed", range(6))
    def test_single_resource_equations(self, equation, seed):
        from repro.workload.random_jobs import (
            random_single_resource_jobset,
        )
        jobset = random_single_resource_jobset(seed=seed, num_jobs=5,
                                               max_offset=4.0)
        analyzer = DelayAnalyzer(jobset)
        rng = np.random.default_rng(seed)
        priority = rng.permutation(5) + 1
        for i in range(5):
            higher = priority < priority[i]
            lower = priority > priority[i]
            breakdown = explain_delay(analyzer, i, higher, lower,
                                      equation=equation)
            expected = analyzer.delay_bound(i, higher, lower,
                                            equation=equation)
            assert breakdown.total == pytest.approx(expected)


class TestBreakdownContent:
    def test_figure2_j2_terms(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        breakdown = explain_delay(analyzer, 1, as_mask(4, [0]),
                                  equation="eq6")
        # Delta_2 = 17 (self) + 22 (J1 job-additive) + 7 + 9 (stages).
        assert breakdown.total == pytest.approx(55.0)
        assert breakdown.by_kind("self")[0].value == pytest.approx(17.0)
        job_terms = breakdown.by_kind("job")
        assert len(job_terms) == 1
        assert job_terms[0].job == 0
        assert job_terms[0].value == pytest.approx(22.0)
        assert len(breakdown.by_kind("stage")) == 2

    def test_dominant_interferer(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        breakdown = explain_delay(analyzer, 1, as_mask(4, [0]),
                                  equation="eq6")
        assert breakdown.dominant_interferer() == 0

    def test_no_interference_dominant_is_none(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        breakdown = explain_delay(analyzer, 0, as_mask(4, []),
                                  equation="eq6")
        assert breakdown.dominant_interferer() is None

    def test_slack(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        breakdown = explain_delay(analyzer, 0, as_mask(4, [2]),
                                  equation="eq6")
        assert breakdown.slack == pytest.approx(60 - 34)

    def test_job_contribution_aggregates(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        breakdown = explain_delay(analyzer, 0, as_mask(4, [2]),
                                  equation="eq6")
        # J3 contributes its job-additive term (6) and realises the
        # stage-0 maximum (6).
        assert breakdown.job_contribution(2) == pytest.approx(12.0)

    def test_blocking_terms_eq10(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        breakdown = explain_delay(analyzer, 0, as_mask(4, [2]),
                                  as_mask(4, [1]), equation="eq10")
        blocking = breakdown.by_kind("blocking")
        assert len(blocking) == 1
        assert blocking[0].stage == 2
        assert blocking[0].value == pytest.approx(17.0)

    def test_format_readable(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        breakdown = explain_delay(analyzer, 1, as_mask(4, [0]),
                                  equation="eq6")
        text = breakdown.format(label=fig2_jobset.label)
        assert "J1" in text
        assert "slack" in text

    def test_unknown_equation(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        with pytest.raises(ValueError, match="unknown equation"):
            explain_delay(analyzer, 0, as_mask(4, []), equation="rta")
