"""Property tests for simulator event ordering (tied timestamps).

Two invariants of :class:`repro.sim.engine.PipelineSimulator`:

1. Completions at time ``t`` dispatch before arrivals at ``t``
   (``_COMPLETE < _ARRIVE``): a resource freed at ``t`` is immediately
   available to a job arriving at exactly ``t``, so back-to-back
   executions never leave an idle gap at the boundary.
2. Traces are invariant to the order the initial arrival events are
   inserted into the event queue, even under randomly tied integer
   timestamps (the instant-batch dispatch absorbs every event at a
   time point before any dispatch decision).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import _ARRIVE, _COMPLETE, PipelineSimulator, simulate
from repro.workload.random_jobs import RandomInstanceConfig, random_jobset


def test_completion_code_orders_before_arrival_code():
    """The heap orders (time, kind, ...): completions must win ties."""
    assert _COMPLETE < _ARRIVE


def test_tied_arrival_reuses_resource_freed_at_same_instant():
    """J1 arrives exactly when J0 completes: with completions
    dispatched first, J1 starts at t=5 with zero idle gap."""
    from repro.core.job import Job
    from repro.core.system import JobSet, MSMRSystem, Stage

    system = MSMRSystem([Stage(1)])
    jobset = JobSet(system, [
        Job(processing=(5.0,), deadline=100.0, arrival=0.0,
            resources=(0,)),
        Job(processing=(3.0,), deadline=100.0, arrival=5.0,
            resources=(0,)),
    ])
    sim = simulate(jobset, [1, 2])
    second = [iv for iv in sim.trace.intervals if iv.job == 1]
    assert len(second) == 1
    assert second[0].start == 5.0
    assert sim.finish_times[1] == 8.0


def _trace_key(trace):
    """Order-independent canonical form of a trace."""
    return sorted(
        (iv.job, iv.stage, iv.resource, iv.start, iv.end, iv.completed)
        for iv in trace.intervals)


tie_params = st.fixed_dictionaries({
    "seed": st.integers(0, 10_000),
    "num_jobs": st.integers(2, 7),
    "num_stages": st.integers(1, 3),
    "resources": st.integers(1, 2),
    "preemptive": st.booleans(),
    "perm_seed": st.integers(0, 1000),
})


def _tied_jobset(params):
    """Random instance whose integer release offsets force timestamp
    ties (several jobs arriving at the same instant)."""
    config = RandomInstanceConfig(
        num_jobs=params["num_jobs"],
        num_stages=params["num_stages"],
        resources_per_stage=params["resources"],
        preemptive=params["preemptive"],
        # Offsets drawn from {0..3} with integral=True: ties guaranteed
        # for most draws, and stage completions land on integers too.
        max_offset=3.0,
    )
    return random_jobset(config, seed=params["seed"])


@settings(max_examples=60, deadline=None)
@given(params=tie_params)
def test_trace_invariant_to_arrival_insertion_order(params):
    jobset = _tied_jobset(params)
    n = jobset.num_jobs
    priority = np.random.default_rng(params["seed"]).permutation(n) + 1
    reference = PipelineSimulator(jobset, priority).run()
    rng = np.random.default_rng(params["perm_seed"])
    for _ in range(3):
        order = [int(i) for i in rng.permutation(n)]
        shuffled = PipelineSimulator(jobset, priority,
                                     arrival_order=order).run()
        assert np.array_equal(shuffled.finish_times,
                              reference.finish_times)
        assert _trace_key(shuffled.trace) == _trace_key(reference.trace)


@settings(max_examples=40, deadline=None)
@given(params=tie_params)
def test_completions_dispatch_before_tied_arrivals(params):
    """Whenever a resource completes a job at ``t`` and another job
    arrives (becomes ready) at exactly ``t``, the resource must not
    sit idle at ``t`` -- some execution interval starts at ``t``."""
    jobset = _tied_jobset(params)
    n = jobset.num_jobs
    priority = np.random.default_rng(params["seed"]).permutation(n) + 1
    sim = PipelineSimulator(jobset, priority).run()
    intervals = sim.trace.intervals
    # Ready times at stage 0 are the arrivals; later stages are the
    # completion times of the previous stage.
    done = sim.stage_finish_times()
    for stage in range(jobset.num_stages):
        ready = (jobset.A if stage == 0 else done[:, stage - 1])
        for resource in {iv.resource for iv in intervals
                         if iv.stage == stage}:
            here = [iv for iv in intervals
                    if iv.stage == stage and iv.resource == resource]
            completion_times = {iv.end for iv in here if iv.completed}
            jobs_here = {iv.job for iv in here}
            starts = {iv.start for iv in here}
            for t in completion_times:
                waiting = [
                    job for job in jobs_here
                    if ready[job] <= t + 1e-9
                    and min(iv.start for iv in here
                            if iv.job == job) >= t - 1e-9
                ]
                if waiting:
                    # Freed capacity + ready work => an execution (of
                    # some job) starts at exactly t.
                    assert any(abs(s - t) <= 1e-9 for s in starts), (
                        f"stage {stage} resource {resource} idle at "
                        f"{t} despite ready jobs {waiting}")
    assert sim.trace.intervals  # sanity: something executed
