"""Tests for the SDCA schedulability test wrapper."""

import pytest

from repro.core.dca import DelayAnalyzer
from repro.core.schedulability import SDCA, Policy, resolve_equation
from tests.conftest import as_mask


class TestPolicyResolution:
    def test_policies_map_to_equations(self):
        assert Policy.PREEMPTIVE.equation == "eq6"
        assert Policy.NONPREEMPTIVE.equation == "eq5"
        assert Policy.EDGE.equation == "eq10"

    def test_resolve_accepts_raw_equations(self):
        assert resolve_equation("eq3") == "eq3"

    def test_resolve_accepts_policy_values(self):
        assert resolve_equation("edge") == "eq10"
        assert resolve_equation(Policy.NONPREEMPTIVE) == "eq5"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown"):
            resolve_equation("rm")


class TestSDCA:
    def test_defaults_to_preemptive_eq6(self, fig2_jobset):
        test = SDCA(fig2_jobset)
        assert test.equation == "eq6"
        assert test.opa_compatible
        assert not test.uses_lower_set

    def test_edge_test_uses_lower_set(self, fig2_jobset):
        test = SDCA(fig2_jobset, Policy.EDGE)
        assert test.uses_lower_set
        assert test.opa_compatible

    def test_eq4_flagged_incompatible(self, fig2_jobset):
        assert not SDCA(fig2_jobset, "eq4").opa_compatible

    def test_delay_matches_analyzer(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        test = SDCA(fig2_jobset, "eq6", analyzer=analyzer)
        higher = as_mask(4, [2])
        assert test.delay(0, higher) == \
            pytest.approx(analyzer.eq6(0, higher))

    def test_is_schedulable_compares_deadline(self, fig2_jobset):
        test = SDCA(fig2_jobset, "eq6")
        # Delta_1 = 34 <= 60.
        assert test(0, as_mask(4, [2]))
        # J3 below everyone: Delta_3 > 55.
        assert not test(2, as_mask(4, [0, 1, 3]))

    def test_slack_sign(self, fig2_jobset):
        test = SDCA(fig2_jobset, "eq6")
        assert test.slack(0, as_mask(4, [2])) == pytest.approx(26.0)
        assert test.slack(2, as_mask(4, [0, 1, 3])) < 0

    def test_missing_lower_defaults_to_empty(self, fig2_jobset):
        test = SDCA(fig2_jobset, Policy.EDGE)
        value = test.delay(0, as_mask(4, [2]))
        explicit = test.delay(0, as_mask(4, [2]), as_mask(4, []))
        assert value == pytest.approx(explicit)

    def test_analyzer_jobset_mismatch_rejected(self, fig2_jobset,
                                               example1_jobset):
        analyzer = DelayAnalyzer(example1_jobset)
        with pytest.raises(ValueError, match="different job set"):
            SDCA(fig2_jobset, "eq6", analyzer=analyzer)

    def test_active_mask_passthrough(self, fig2_jobset):
        test = SDCA(fig2_jobset, "eq6")
        higher = as_mask(4, [2])
        active = as_mask(4, [0, 1, 3])
        restricted = test.delay(0, higher, active=active)
        # With J3 deactivated the higher set is effectively empty.
        assert restricted == pytest.approx(15 + 5 + 7)
