"""Waterfall rendering of a delay-bound breakdown.

Turns a :class:`~repro.core.explain.DelayBreakdown` into a cumulative
bar chart: each term extends the bar further right, the deadline is
marked with ``|D``, and the offending terms past the deadline are
visually obvious.  This is the "why does J17 miss" picture.
"""

from __future__ import annotations

from repro.core.explain import DelayBreakdown

_DEF_WIDTH = 60

_KIND_GLYPH = {"self": "#", "job": "=", "stage": "+", "blocking": "o"}


def breakdown_waterfall(breakdown: DelayBreakdown, *,
                        width: int = _DEF_WIDTH,
                        label=None) -> str:
    """Render a breakdown as a cumulative waterfall chart.

    Parameters
    ----------
    breakdown:
        Output of :func:`repro.core.explain.explain_delay`.
    width:
        Characters allocated to the largest of (total bound, deadline).
    label:
        Optional ``job_index -> str`` naming function.
    """
    if width < 20:
        raise ValueError(f"width must be >= 20, got {width}")
    label = label or (lambda j: f"J{j}")
    scale_max = max(breakdown.total, breakdown.deadline)
    if scale_max <= 0:
        return f"{label(breakdown.job)}: zero delay bound"

    def cells(value: float) -> int:
        return int(round(width * value / scale_max))

    deadline_cell = min(width, cells(breakdown.deadline))
    lines = [
        f"{label(breakdown.job)} under {breakdown.equation}: bound "
        f"{breakdown.total:.2f}, deadline {breakdown.deadline:.2f} "
        f"(slack {breakdown.slack:+.2f})",
    ]
    cumulative = 0.0
    for term in breakdown.terms:
        start_cell = cells(cumulative)
        cumulative += term.value
        end_cell = max(start_cell + 1, cells(cumulative))
        end_cell = min(end_cell, width + 20)  # never run away
        glyph = _KIND_GLYPH.get(term.kind, "?")
        bar = " " * start_cell + glyph * (end_cell - start_cell)
        if len(bar) <= deadline_cell:
            # Mark the deadline column with a dot on rows ending short.
            bar = bar + " " * (deadline_cell - len(bar)) + "."
        if term.kind == "self":
            name = f"self {label(term.job)}"
        elif term.kind == "job":
            name = f"job  {label(term.job)}"
        elif term.kind == "stage":
            name = f"S{term.stage} max ({label(term.job)})"
        else:
            name = f"S{term.stage} blk ({label(term.job)})"
        lines.append(f"  {name:<18} {bar} {term.value:8.2f} "
                     f"(cum {cumulative:.2f})")
    indent = 2 + 18 + 1  # matches the f"  {name:<18} " row prefix
    lines.append(" " * (indent + deadline_cell) + "^ deadline")
    return "\n".join(lines)
