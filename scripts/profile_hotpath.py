#!/usr/bin/env python3
"""cProfile harness over the three analysis hot paths.

Profiles, at fixed seeds (deterministic workloads, comparable across
runs):

* ``opdca``   -- batched OPDCA (paired contribution kernels + the
  frontier-carrying Audsley engine) over edge cases;
* ``admission`` -- the OPDCA admission controller over overloaded
  edge cases (discard cascade included);
* ``online``  -- the streaming admission engine in incremental mode
  over a congested Poisson stream.

Usage::

    PYTHONPATH=src python scripts/profile_hotpath.py [target ...] \
        [--jobs N] [--cases K] [--top N] [--sort cumulative|tottime] \
        [--kernel paired|reference|compiled|auto]

With no targets, all three are profiled.  Each target prints a
top-``N`` table sorted by cumulative time (default), the right view
for "which layer is hot"; ``--sort tottime`` surfaces leaf kernels.
``--kernel`` selects the level-evaluation tier under profile (see
``docs/kernels.md``); the header prints both the requested value and
the tier it resolves to, so saved profiles are attributable.

This is a developer tool: output is wall-clock and machine-dependent.
The committed regression gates live in ``benchmarks/`` and
``scripts/compare_bench.py``.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

TARGETS = ("opdca", "admission", "online")


def _edge_jobsets(num_jobs: int, cases: int, *, gamma: float | None = None):
    from repro.workload.edge import EdgeWorkloadConfig, generate_edge_case

    scale = num_jobs / 100.0
    kwargs = {} if gamma is None else {"gamma": gamma}
    config = EdgeWorkloadConfig(
        num_jobs=num_jobs,
        num_aps=max(2, int(round(25 * scale))),
        num_servers=max(2, int(round(20 * scale))), **kwargs)
    return [generate_edge_case(config, seed=seed).jobset
            for seed in range(cases)]


def run_opdca(num_jobs: int, cases: int, kernel: str) -> None:
    from repro.core.dca import DelayAnalyzer
    from repro.core.opdca import opdca
    from repro.core.schedulability import SDCA

    for jobset in _edge_jobsets(num_jobs, cases):
        test = SDCA(jobset, "eq10",
                    analyzer=DelayAnalyzer(jobset, kernel=kernel))
        opdca(jobset, "eq10", test=test)


def run_admission(num_jobs: int, cases: int, kernel: str) -> None:
    from repro.core.admission import opdca_admission
    from repro.core.dca import DelayAnalyzer
    from repro.core.schedulability import SDCA

    # A tight heaviness budget forces the discard cascade.
    for jobset in _edge_jobsets(num_jobs, cases, gamma=1.4):
        test = SDCA(jobset, "eq10",
                    analyzer=DelayAnalyzer(jobset, kernel=kernel))
        opdca_admission(jobset, "eq10", test=test)


def run_online(num_jobs: int, cases: int, kernel: str) -> None:
    from repro.online import (
        OnlineAdmissionEngine,
        StreamConfig,
        generate_stream,
    )

    for seed in range(cases):
        stream = generate_stream(
            StreamConfig(horizon=150.0, rate=1.3, dwell_scale=2.0,
                         pool_size=min(num_jobs, 40)),
            seed=seed)
        OnlineAdmissionEngine(stream, mode="incremental",
                              kernel=kernel).run()


RUNNERS = {"opdca": run_opdca, "admission": run_admission,
           "online": run_online}


def profile_target(target: str, *, num_jobs: int, cases: int,
                   top: int, sort: str, kernel: str) -> None:
    from repro.core.kernels import resolve_kernel

    # Resolve once for the header: "auto" depends on the instance
    # size, and an unavailable compiled tier should fail before the
    # profiler spins up, with the kernels module's clear error.
    effective = resolve_kernel(kernel, num_jobs=num_jobs)
    runner = RUNNERS[target]
    runner(num_jobs, min(cases, 1), kernel)  # warm imports/caches
    profiler = cProfile.Profile()
    profiler.enable()
    runner(num_jobs, cases, kernel)
    profiler.disable()
    kernel_note = (kernel if kernel == effective
                   else f"{kernel} -> {effective}")
    print(f"\n=== {target} (n={num_jobs}, cases={cases}, "
          f"kernel={kernel_note}, sort={sort}) ===")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(top)


def main(argv: "list[str] | None" = None) -> int:
    from repro.core.kernels import KERNEL_TIERS

    parser = argparse.ArgumentParser(
        description="Profile the opdca/admission/online hot paths.")
    parser.add_argument("targets", nargs="*", metavar="TARGET",
                        help=f"hot paths to profile, from {TARGETS} "
                             f"(default: all)")
    parser.add_argument("--jobs", type=int, default=100, metavar="N",
                        help="jobs per case / stream pool size "
                             "(default: 100)")
    parser.add_argument("--cases", type=int, default=3, metavar="K",
                        help="cases (or stream seeds) per target "
                             "(default: 3)")
    parser.add_argument("--top", type=int, default=25, metavar="N",
                        help="rows of the profile table (default: 25)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime"),
                        help="profile sort key (default: cumulative)")
    parser.add_argument("--kernel", default="paired",
                        choices=KERNEL_TIERS,
                        help="level-evaluation kernel tier under "
                             "profile (default: paired)")
    args = parser.parse_args(argv)
    if args.jobs <= 0 or args.cases <= 0 or args.top <= 0:
        parser.error("--jobs/--cases/--top must be positive")
    targets = args.targets or list(TARGETS)
    unknown = [t for t in targets if t not in TARGETS]
    if unknown:
        parser.error(f"unknown target(s) {unknown}; expected {TARGETS}")
    for target in targets:
        profile_target(target, num_jobs=args.jobs, cases=args.cases,
                       top=args.top, sort=args.sort, kernel=args.kernel)
    return 0


if __name__ == "__main__":
    sys.exit(main())
