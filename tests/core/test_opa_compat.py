"""OPA-compatibility of the S_DCA bounds (Observations IV.1 / IV.2).

The three conditions (Davis & Burns):
1. schedulability may depend on the *set* of higher-priority jobs but
   not their relative order -- structural for mask-based bounds;
2. likewise for the lower-priority set;
3. swapping adjacent priorities must not help the demoted job or hurt
   the promoted one.

Conditions 1-2 are trivially satisfied by construction (the analyzer
receives sets).  Condition 3 is checked by brute force on random
instances: for every compatible bound, promoting a job never increases
its delay bound and demoting never decreases it.
"""

import numpy as np
import pytest

from repro.core.dca import OPA_COMPATIBLE_EQUATIONS, DelayAnalyzer
from repro.workload.random_jobs import (
    RandomInstanceConfig,
    random_jobset,
    random_single_resource_jobset,
)
from tests.conftest import as_mask


def _condition3_holds(analyzer, equation: str, n: int) -> bool:
    """Check condition 3 over all orderings-adjacent swaps of a random
    priority ordering."""
    rng = np.random.default_rng(42)
    priority = rng.permutation(n) + 1
    order = np.argsort(priority)
    for pos in range(n - 1):
        upper, lower = int(order[pos]), int(order[pos + 1])
        # Before swap: delay of `lower` at its current priority.
        higher_before = priority < priority[lower]
        lower_before = priority > priority[lower]
        before = analyzer.delay_bound(
            lower, higher_before, lower_before, equation=equation)
        # After swapping upper/lower: `lower` is promoted one step.
        swapped = priority.copy()
        swapped[upper], swapped[lower] = swapped[lower], swapped[upper]
        higher_after = swapped < swapped[lower]
        lower_after = swapped > swapped[lower]
        after = analyzer.delay_bound(
            lower, higher_after, lower_after, equation=equation)
        if after > before + 1e-9:
            return False
    return True


@pytest.mark.parametrize("equation", ["eq3", "eq5", "eq6"])
@pytest.mark.parametrize("seed", range(8))
def test_msmr_compatible_bounds_satisfy_condition3(equation, seed):
    jobset = random_jobset(
        RandomInstanceConfig(num_jobs=6, num_stages=3,
                             resources_per_stage=2), seed=seed)
    analyzer = DelayAnalyzer(jobset)
    assert _condition3_holds(analyzer, equation, jobset.num_jobs)


@pytest.mark.parametrize("seed", range(8))
def test_eq1_satisfies_condition3(seed):
    jobset = random_single_resource_jobset(seed=seed, num_jobs=5)
    analyzer = DelayAnalyzer(jobset)
    assert _condition3_holds(analyzer, "eq1", jobset.num_jobs)


@pytest.mark.parametrize("seed", range(8))
def test_eq10_satisfies_condition3(seed):
    jobset = random_jobset(
        RandomInstanceConfig(num_jobs=6, num_stages=3,
                             resources_per_stage=2), seed=seed)
    analyzer = DelayAnalyzer(jobset)
    assert _condition3_holds(analyzer, "eq10", jobset.num_jobs)


def test_eq2_violates_condition3_on_example1(example1_jobset):
    """Observation IV.2's witness: J2's bound *improves* when demoted."""
    analyzer = DelayAnalyzer(example1_jobset)
    original = analyzer.eq2(1, as_mask(4, [0]), as_mask(4, [2, 3]))
    demoted = analyzer.eq2(1, as_mask(4, [0, 2]), as_mask(4, [3]))
    assert demoted < original


def test_eq4_can_violate_condition3():
    """Eq. 4 inherits Eq. 2's incompatibility (search for a witness
    among random MSMR instances)."""
    witness_found = False
    for seed in range(100):
        jobset = random_jobset(
            RandomInstanceConfig(num_jobs=5, num_stages=3,
                                 resources_per_stage=2), seed=seed)
        analyzer = DelayAnalyzer(jobset)
        if not _condition3_holds(analyzer, "eq4", jobset.num_jobs):
            witness_found = True
            break
    assert witness_found, "no OPA-incompatibility witness for eq4"


def test_compatibility_registry():
    assert "eq2" not in OPA_COMPATIBLE_EQUATIONS
    assert "eq4" not in OPA_COMPATIBLE_EQUATIONS
    for equation in ("eq1", "eq3", "eq5", "eq6", "eq10"):
        assert equation in OPA_COMPATIBLE_EQUATIONS
