"""Exception hierarchy for the :mod:`repro` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """Raised when a job, system, or job set is ill-formed."""


class InfeasibleError(ReproError):
    """Raised when a priority-assignment problem admits no solution.

    Carries optional diagnostic payload so callers (e.g. admission
    controllers) can inspect which job failed and by how much.
    """

    def __init__(self, message: str, *, job: int | None = None,
                 excess: float | None = None) -> None:
        super().__init__(message)
        #: Index of the job that could not be scheduled, when known.
        self.job = job
        #: ``delay_bound - deadline`` of the failing job, when known.
        self.excess = excess


class SolverError(ReproError):
    """Raised when an optimisation backend fails unexpectedly."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator reaches an invalid state."""
