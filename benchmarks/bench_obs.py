"""Observability overhead: the telemetry spine must stay under 5%.

Every admission decision now ticks ``repro.obs`` counters (decision
outcomes, kernel-cache hits/misses, retry-queue depth) and feeds a
latency histogram.  This benchmark replays congested streams through
two engines in lock-step -- one with the instrumentation live (the
default) and one under :func:`repro.obs.null_instrumentation`, which
flips the module-level enable flag so every ``inc``/``observe``
returns before touching any state (the closest stdlib approximation
of physically removing the instrumentation) -- and compares the
decision-path seconds of the two arms.

Measurement design (shared CI runners are noisy at the 10-20% level,
far above the true sub-1% overhead being gated):

* The arms are interleaved per *event*, not per run: each event is
  processed by both engines back-to-back (alternating which arm goes
  first), so multi-millisecond noise bursts hit both arms equally
  instead of landing on whichever run they happen to overlap.
* Per-event decision times are reduced with best-of across
  ``REPEATS`` full replays.  Noise can only inflate a measurement,
  so the per-event minimum converges on the true cost of exactly
  that event's analysis work, and the summed minima compare the two
  arms at matched work.

Tracing stays disabled in both arms, as it is on every hot path
unless ``--trace`` installs an exporter: span creation cost is one
``is None`` test.

Gates: the in-test assert and CI's ``obs-overhead`` step (via
``compare_bench.py --ceiling 'overhead_pct(online)=5.0'``) both cap
the measured overhead at 5%.  Decisions must also be bitwise
identical between the arms -- instrumentation observes, never
steers.
"""

from repro.experiments.config import full_scale
from repro.obs import null_instrumentation
from repro.online import (
    OnlineAdmissionEngine,
    StreamConfig,
    generate_stream,
)
from repro.online.engine import EVENT_ARRIVE, stream_events

#: The congested operating point of ``bench_online.py``: the admitted
#: set is large, so per-event analysis work is realistic and the
#: counter cost is measured against genuine decision latency.
RATE = 1.3
DWELL_SCALE = 2.0
POOL_SIZE = 40

#: Full event-interleaved replays; per-event best-of is used.
REPEATS = 3

#: The gate, percent.  Must match CI's ``--ceiling``.
MAX_OVERHEAD_PCT = 5.0


def _interleaved_replay(streams) -> dict:
    """One lock-step replay of every stream through both arms.

    Returns per-event decision seconds per arm (in replay order)
    plus each arm's decision sequence for the equivalence check.
    """
    times = {"obs": [], "null": []}
    decisions = {"obs": [], "null": []}
    for stream in streams:
        engines = {
            "obs": OnlineAdmissionEngine(stream),
            "null": OnlineAdmissionEngine(stream),
        }
        for index, (now, kind, uid) in enumerate(
                stream_events(stream)):
            verb = "arrive" if kind == EVENT_ARRIVE else "depart"
            order = (("null", "obs") if index % 2 == 0
                     else ("obs", "null"))
            for arm in order:
                engine = engines[arm]
                before = engine.decision_seconds
                if arm == "null":
                    with null_instrumentation():
                        engine.process(now, verb, uid)
                else:
                    engine.process(now, verb, uid)
                times[arm].append(
                    engine.decision_seconds - before)
        for arm in ("obs", "null"):
            decisions[arm].extend(
                record.decision
                for record in engines[arm].result().records)
    return {"times": times, "decisions": decisions}


def test_obs_overhead(benchmark):
    if full_scale():
        horizon, seeds = 140.0, 2
    else:
        horizon, seeds = 100.0, 2
    streams = [
        generate_stream(
            StreamConfig(horizon=horizon, rate=RATE,
                         dwell_scale=DWELL_SCALE,
                         pool_size=POOL_SIZE),
            seed=seed)
        for seed in range(seeds)
    ]

    best: dict = {}
    decisions: dict = {}

    def run_all():
        best.clear()
        for _ in range(REPEATS):
            replay = _interleaved_replay(streams)
            decisions.update(replay["decisions"])
            if not best:
                best.update(replay["times"])
            else:
                for arm, samples in replay["times"].items():
                    best[arm] = [min(previous, sample)
                                 for previous, sample
                                 in zip(best[arm], samples)]

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    seconds = {arm: sum(samples) for arm, samples in best.items()}
    overhead_pct = 100.0 * (seconds["obs"] / seconds["null"] - 1.0)
    events = len(best["obs"])
    benchmark.extra_info["events"] = events
    benchmark.extra_info["decision_seconds(instrumented)"] = round(
        seconds["obs"], 4)
    benchmark.extra_info["decision_seconds(null)"] = round(
        seconds["null"], 4)
    benchmark.extra_info["overhead_pct(online)"] = round(
        overhead_pct, 2)
    print(f"\nobservability overhead: {events} events, "
          f"{seconds['null']:.3f}s uninstrumented vs "
          f"{seconds['obs']:.3f}s instrumented "
          f"({overhead_pct:+.2f}%)")
    assert events > 0
    # Instrumentation observes the decision path; it must never
    # change it.
    assert decisions["obs"] == decisions["null"], (
        "decisions diverged between instrumented and "
        "null-instrumented runs")
    # The tentpole gate: the always-on telemetry spine must cost
    # less than 5% of decision-path wall clock.
    assert overhead_pct <= MAX_OVERHEAD_PCT, (
        f"observability overhead regressed: {overhead_pct:.2f}% "
        f"> {MAX_OVERHEAD_PCT:g}%")
