"""One-line trend summaries for parameter sweeps.

A sparkline compresses a numeric series into one character per point
using block glyphs, so a whole sweep table can show trends in a single
extra column (``python -m repro fig4a`` uses this in its footer).
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Eight block heights, lowest to highest (pure ASCII fallback included).
BLOCKS = "▁▂▃▄▅▆▇█"
ASCII_BLOCKS = "_.-=+*#@"


def sparkline(values: Sequence[float], *, lo: float | None = None,
              hi: float | None = None, ascii_only: bool = False) -> str:
    """Render ``values`` as a fixed-range sparkline.

    ``lo``/``hi`` pin the scale (e.g. 0-100 for acceptance ratios); by
    default the scale spans the data.  A flat series renders at
    mid-height.
    """
    if not values:
        return ""
    blocks = ASCII_BLOCKS if ascii_only else BLOCKS
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi < lo:
        raise ValueError(f"hi ({hi}) must be >= lo ({lo})")
    span = hi - lo
    chars = []
    for value in values:
        if span == 0:
            level = len(blocks) // 2
        else:
            clipped = min(max(value, lo), hi)
            level = int((clipped - lo) / span * (len(blocks) - 1))
        chars.append(blocks[level])
    return "".join(chars)


def sparkline_table(series: Mapping[str, Sequence[float]], *,
                    lo: float | None = None, hi: float | None = None,
                    ascii_only: bool = False) -> str:
    """One labelled sparkline per series, with min/max annotations.

    All series share the scale given by ``lo``/``hi`` (default: the
    global data range) so the lines are comparable.
    """
    if not series:
        return "(no data)"
    flat = [v for values in series.values() for v in values]
    if not flat:
        return "(no data)"
    lo = min(flat) if lo is None else lo
    hi = max(flat) if hi is None else hi
    label_width = max(len(str(name)) for name in series)
    lines = []
    for name, values in series.items():
        line = sparkline(values, lo=lo, hi=hi, ascii_only=ascii_only)
        if values:
            annotation = f"  [{min(values):.1f} .. {max(values):.1f}]"
        else:
            annotation = "  (empty)"
        lines.append(f"{str(name):<{label_width}} {line}{annotation}")
    return "\n".join(lines)
