"""DMR -- Deadline-Monotonic & Repair heuristic (Algorithm 2).

DMR starts from the deadline-monotonic pairwise assignment and repairs
deadline violations: for an infeasible job ``J_i``, it steals priority
from conflicting higher-priority jobs ``J_k`` that have slack
(``Delta_k < D_k``), most-slack first, as long as the flip keeps ``J_k``
feasible.  A key structural property of the DCA bounds makes the repair
cheap: re-orienting the pair ``(i, k)`` only changes the delay bounds of
``J_i`` and ``J_k`` -- no other job's higher/lower sets are affected.

The paper does not discuss termination; because flips could in
principle ping-pong through chains of jobs, the implementation caps the
number of accepted flips at ``max_flips`` (default ``4 n^2``) and
declares the instance infeasible if the budget is exhausted.  The cap
was never reached in any experiment of the reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.core.dca import DelayAnalyzer
from repro.core.priorities import PairwiseAssignment
from repro.core.schedulability import DEADLINE_TOLERANCE, resolve_equation
from repro.core.system import JobSet
from repro.pairwise.dm import dm_assignment
from repro.pairwise.results import PairwiseResult


def dmr(jobset: JobSet, equation: str = "eq6", *,
        analyzer: DelayAnalyzer | None = None,
        max_flips: int | None = None) -> PairwiseResult:
    """Compute a pairwise priority assignment with Algorithm 2.

    Parameters
    ----------
    jobset:
        Job set (with its job-to-resource mapping).
    equation:
        DCA bound used for the delay computations (``eq6`` for
        preemptive MSMR scheduling, ``eq10`` for the edge pipeline,
        ``eq4`` for non-preemptive -- the paper notes Eq. 4 may be used
        here since OPA-compatibility is not needed for pairwise search).
    analyzer:
        Optional shared :class:`DelayAnalyzer`.
    max_flips:
        Safety cap on accepted priority flips (default ``4 n^2``).

    Returns
    -------
    PairwiseResult
        ``stats`` records ``flips`` (accepted), ``attempted_flips`` and
        ``repair_rounds``.  When infeasible, the returned assignment is
        the best repaired attempt (useful for admission control).
    """
    equation = resolve_equation(equation)
    if analyzer is None:
        analyzer = DelayAnalyzer(jobset)
    n = jobset.num_jobs
    if max_flips is None:
        max_flips = 4 * n * n

    state = _DMRState(jobset, analyzer, equation)
    feasible = state.repair(max_flips)
    assignment = PairwiseAssignment.from_matrix(jobset, state.x)
    return PairwiseResult(
        feasible=feasible,
        assignment=assignment,
        delays=state.delays.copy(),
        equation=equation,
        solver="dmr",
        stats={
            "flips": state.flips,
            "attempted_flips": state.attempted_flips,
            "repair_rounds": state.rounds,
        },
    )


class _DMRState:
    """Mutable assignment state with incremental delay maintenance."""

    def __init__(self, jobset: JobSet, analyzer: DelayAnalyzer,
                 equation: str,
                 active: np.ndarray | None = None) -> None:
        self.jobset = jobset
        self.analyzer = analyzer
        self.equation = equation
        self.active = (np.ones(jobset.num_jobs, dtype=bool)
                       if active is None else active.copy())
        self.x = dm_assignment(jobset).matrix()
        self.delays = analyzer.delays_for_pairwise(
            self.x, equation=equation, active=self.active)
        self.flips = 0
        self.attempted_flips = 0
        self.rounds = 0
        self._conflict = jobset.conflicts

    # -- delay bookkeeping ------------------------------------------------

    def _delay_of(self, i: int) -> float:
        """Delay of ``J_i`` under the current orientation matrix.

        Served by the analyzer's fused single-candidate kernel, which
        is bitwise identical to the batched ``delays_for_pairwise``
        rows this state is seeded from (the legacy scalar
        ``delay_bound`` path gathers masked entries and agrees only to
        ~1e-12 relative) -- so repaired entries and batch-refreshed
        entries of ``self.delays`` now come from one summation tree.
        """
        higher = self.x[:, i].copy()
        # The level kernels expect the candidate inside its own
        # higher mask (``Q_i`` semantics; filtered to ``H_i``/``ep``
        # terms internally, exactly like the batch path's ``| eye``).
        higher[i] = True
        return self.analyzer.level_bound_single(
            i, higher, self.x[i], equation=self.equation,
            active=self.active)

    def refresh(self, jobs: "list[int] | None" = None) -> None:
        """Recompute delays of ``jobs`` (all active jobs when None)."""
        if jobs is None:
            self.delays = self.analyzer.delays_for_pairwise(
                self.x, equation=self.equation, active=self.active)
            return
        for i in jobs:
            if self.active[i]:
                self.delays[i] = self._delay_of(i)

    def deactivate(self, i: int) -> None:
        """Remove a job from the analysis (admission control).

        Only the delays of jobs whose interference window overlaps
        ``J_i`` can change -- every other job's masks are identical
        with or without it -- so those rows are recomputed through the
        row-sliced batch kernel (bitwise identical to a full
        ``delays_for_pairwise`` refresh) in ``O(a n N)`` instead of
        ``O(n^2 N)`` per discard.
        """
        self.active[i] = False
        self.delays[i] = np.nan
        if not self.analyzer.window_filter:
            self.refresh()
            return
        affected = np.flatnonzero(self.active &
                                  self.jobset.overlaps[:, i])
        if affected.size:
            self.delays[affected] = self.analyzer.delay_bounds_rows(
                affected, self.x.T[affected], self.x[affected],
                equation=self.equation, active=self.active)

    # -- Algorithm 2 ------------------------------------------------------

    def infeasible_jobs(self) -> list[int]:
        deadlines = self.jobset.D
        mask = self.active & (self.delays > deadlines + DEADLINE_TOLERANCE)
        return [int(i) for i in np.flatnonzero(mask)]

    def repair_candidates(self, i: int) -> list[int]:
        """``F_i``: conflicting higher-priority jobs with slack, sorted
        by decreasing slack ``D_k - Delta_k`` (Steps 5-6)."""
        deadlines = self.jobset.D
        mask = (self._conflict[i] & self.x[:, i] & self.active &
                (self.delays < deadlines - DEADLINE_TOLERANCE))
        candidates = [int(k) for k in np.flatnonzero(mask)]
        candidates.sort(key=lambda k: -(deadlines[k] - self.delays[k]))
        return candidates

    def try_flip(self, i: int, k: int) -> bool:
        """Steps 7-8: re-orient to ``J_i > J_k`` if ``J_k`` stays
        feasible; returns True when the flip is kept."""
        self.attempted_flips += 1
        self.x[i, k] = True
        self.x[k, i] = False
        new_delay_k = self._delay_of(k)
        if new_delay_k <= self.jobset.D[k] + DEADLINE_TOLERANCE:
            self.delays[k] = new_delay_k
            self.delays[i] = self._delay_of(i)
            self.flips += 1
            return True
        self.x[i, k] = False
        self.x[k, i] = True
        return False

    def repair(self, max_flips: int) -> bool:
        """Run the repair phase; True iff all active jobs end feasible."""
        deadlines = self.jobset.D
        while True:
            self.rounds += 1
            pending = self.infeasible_jobs()
            if not pending:
                return True
            restarted = False
            for i in pending:
                if self.delays[i] <= deadlines[i] + DEADLINE_TOLERANCE:
                    continue
                for k in self.repair_candidates(i):
                    if self.flips >= max_flips:
                        return False
                    if not self.try_flip(i, k):
                        continue
                    if self.delays[i] <= deadlines[i] + DEADLINE_TOLERANCE:
                        restarted = True
                        break
                if restarted:
                    break  # Step 9: go back to Step 4.
                if self.delays[i] > deadlines[i] + DEADLINE_TOLERANCE:
                    return False  # Step 10.
            if not restarted:
                return not self.infeasible_jobs()
