"""Setup shim for legacy editable installs.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` uses this shim instead.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
