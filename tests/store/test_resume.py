"""Resumability: interrupted sweeps complete bitwise-identically.

The acceptance contract of the result store: a sweep killed after at
least one checkpoint and resumed with the same config produces
aggregate results bitwise identical to an uninterrupted run -- for
the serial and the ``n_workers > 1`` paths -- and a fully warm cache
re-run performs no evaluation at all.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import parallel as parallel_module
from repro.experiments.figures import figure_4a, figure_4d
from repro.experiments.parallel import (
    ScenarioSpec,
    evaluate_scenarios,
    parallel_map,
)
from repro.experiments.runner import CaseResult
from repro.store import ResultStore
from repro.workload.edge import EdgeWorkloadConfig

TINY = EdgeWorkloadConfig(num_jobs=10, num_aps=4, num_servers=3)
FAST = ("dm", "dmr", "opdca")


def _specs(seeds):
    return [ScenarioSpec(seed=seed, workload=TINY, generator="edge",
                         equation="eq10", approaches=FAST)
            for seed in seeds]


def _deterministic(result):
    return (result.seed, result.accepted, result.notes,
            result.system_heaviness)


class _DyingStore(ResultStore):
    """A store whose process 'dies' after ``survive`` checkpoints."""

    def __init__(self, root, survive: int):
        super().__init__(root)
        self._survive = survive

    def put(self, key, payload, **kwargs):
        if self.counters.writes >= self._survive:
            raise KeyboardInterrupt("simulated kill")
        super().put(key, payload, **kwargs)


class TestCaseResultRoundTrip:
    def test_exact(self):
        result = CaseResult(
            seed=7,
            accepted={"dm": False, "opt": True},
            runtime={"dm": 0.1 + 0.2, "opt": 1e-17},
            system_heaviness=0.6999999999999997,
            notes={"opt_status": "Optimal"})
        clone = CaseResult.from_dict(result.to_dict())
        assert clone == result
        assert clone.runtime["dm"] == result.runtime["dm"]

    def test_rejects_foreign_payloads(self):
        with pytest.raises(ValueError, match="repro-case-result"):
            CaseResult.from_dict({"format": "something-else"})


class TestInterruptedSweep:
    def test_serial_kill_then_resume_matches_one_shot(self, tmp_path):
        specs = _specs(range(6))
        one_shot = evaluate_scenarios(specs)

        dying = _DyingStore(tmp_path, survive=2)
        with pytest.raises(KeyboardInterrupt):
            evaluate_scenarios(specs, store=dying)

        store = ResultStore(tmp_path)
        resumed = evaluate_scenarios(specs, store=store)
        assert store.counters.hits == 2      # the two checkpoints
        assert store.counters.misses == 4    # only the rest evaluated
        assert [_deterministic(r) for r in resumed] == \
            [_deterministic(r) for r in one_shot]

    def test_parallel_kill_then_parallel_resume(self, tmp_path):
        specs = _specs(range(6))
        one_shot = evaluate_scenarios(specs, n_workers=2)

        dying = _DyingStore(tmp_path, survive=3)
        with pytest.raises(KeyboardInterrupt):
            evaluate_scenarios(specs, n_workers=2, store=dying)

        store = ResultStore(tmp_path)
        resumed = evaluate_scenarios(specs, n_workers=2, store=store)
        assert store.counters.hits == 3
        assert [_deterministic(r) for r in resumed] == \
            [_deterministic(r) for r in one_shot]

    def test_warm_cache_skips_all_evaluation(self, tmp_path,
                                             monkeypatch):
        specs = _specs(range(4))
        store = ResultStore(tmp_path)
        first = evaluate_scenarios(specs, store=store)

        def exploder(spec):
            raise AssertionError("evaluated despite a warm cache")

        monkeypatch.setattr(parallel_module, "run_scenario", exploder)
        warm_store = ResultStore(tmp_path)
        warm = evaluate_scenarios(specs, store=warm_store)
        assert warm_store.counters.misses == 0
        assert warm_store.counters.hits == len(specs)
        # Bitwise including runtimes: cached entries replay the run
        # that computed them.
        assert warm == first


@settings(max_examples=4, deadline=None)
@given(seed0=st.integers(0, 300), checkpoint=st.integers(1, 4),
       n_workers=st.sampled_from([1, 2]))
def test_property_resume_is_bitwise_identical(tmp_path_factory, seed0,
                                              checkpoint, n_workers):
    """Property: for any kill point with >= 1 checkpoint and either
    worker-count path, resume output == one-shot output."""
    tmp_path = tmp_path_factory.mktemp("resume")
    specs = _specs(range(seed0, seed0 + 5))
    one_shot = evaluate_scenarios(specs, n_workers=n_workers)

    dying = _DyingStore(tmp_path, survive=checkpoint)
    with pytest.raises(KeyboardInterrupt):
        evaluate_scenarios(specs, n_workers=n_workers, store=dying)

    store = ResultStore(tmp_path)
    resumed = evaluate_scenarios(specs, n_workers=n_workers,
                                 store=store)
    assert store.counters.hits == checkpoint
    assert [_deterministic(r) for r in resumed] == \
        [_deterministic(r) for r in one_shot]


class TestCachedParallelMap:
    def test_miss_then_hit_round_trip(self, tmp_path):
        from repro.experiments.figures import _admission_case

        args = [(TINY, seed, "eq10") for seed in range(3)]
        store = ResultStore(tmp_path)
        cold = parallel_map(_admission_case, args, store=store,
                            key="fig4d/admission")
        assert store.counters.writes == 3
        warm_store = ResultStore(tmp_path)
        warm = parallel_map(_admission_case, args, store=warm_store,
                            key="fig4d/admission")
        assert warm_store.counters.misses == 0
        assert warm == cold

    def test_key_isolates_namespaces(self, tmp_path):
        from repro.experiments.figures import _admission_case

        args = [(TINY, 0, "eq10")]
        store = ResultStore(tmp_path)
        parallel_map(_admission_case, args, store=store, key="one")
        parallel_map(_admission_case, args, store=store, key="two")
        assert store.counters.writes == 2


class TestFiguresFromStore:
    def _config(self, cache_dir):
        from repro.experiments.config import ExperimentConfig

        return ExperimentConfig(cases=2, base=TINY,
                                cache_dir=str(cache_dir))

    def test_fig4a_warm_regeneration_is_identical(self, tmp_path):
        from repro.experiments.config import ExperimentConfig

        plain = figure_4a(ExperimentConfig(cases=2, base=TINY))
        cold = figure_4a(self._config(tmp_path))
        store = ResultStore(tmp_path)
        warm = figure_4a(self._config(tmp_path), store=store)
        assert store.counters.misses == 0
        assert store.counters.hits == sum(
            len(point.raw["dm"]) for point in warm.points)
        for a, b, c in zip(plain.points, cold.points, warm.points):
            assert a.values == b.values == c.values
            assert a.raw == b.raw == c.raw
            assert a.mean_system_heaviness == \
                b.mean_system_heaviness == c.mean_system_heaviness

    def test_fig4d_warm_regeneration_is_identical(self, tmp_path):
        cold = figure_4d(self._config(tmp_path))
        store = ResultStore(tmp_path)
        warm = figure_4d(self._config(tmp_path), store=store)
        assert store.counters.misses == 0
        for b, c in zip(cold.points, warm.points):
            assert b.values == c.values
            assert b.raw == c.raw

    def test_store_none_disables_config_cache(self, tmp_path):
        figure_4a(self._config(tmp_path), store=None)
        assert not any(tmp_path.iterdir())
