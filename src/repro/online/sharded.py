"""Sharded streaming admission: many cells, one stream.

:class:`ShardedAdmissionEngine` scales the online admission controller
past one resource cluster by partitioning the system's resources into
shards (:class:`~repro.core.partition.ShardMap`) and hosting one
:class:`~repro.online.cell.AdmissionCell` per shard.  Every arrival is
routed by its resource footprint:

* a **shard-local** job (footprint inside one shard) goes through its
  home cell's full controller, exactly like the monolithic engine --
  and because jobs in different shards never share a resource, those
  decisions are *exact*, not approximate (see
  :mod:`repro.core.partition`).
* a **cross-shard** job (footprint spanning shards) is admitted by
  conservative two-phase reservation: phase 1 asks every touched cell
  whether the job fits *whole, with no evictions*
  (:meth:`~repro.online.cell.AdmissionCell.reserve`) -- a cheap
  necessary filter -- and then certifies the whole prospective
  admitted set against the **whole-universe** analysis
  (:meth:`ShardedAdmissionEngine._certify`); only if both agree does
  phase 2 commit on each touched cell
  (:meth:`~repro.online.cell.AdmissionCell.commit_reservation`) --
  otherwise nothing changed anywhere and the job is parked in the
  engine-level cross-shard retry queue.  The invariant is
  all-or-nothing residency: a cross-shard job is admitted on every
  touched shard or on none.

  The global certificate is what makes cross-shard admission *sound*:
  a per-shard reservation bounds the job's end-to-end deadline using
  only that shard's members as interferers, and the per-shard stage
  delays are additive into one end-to-end deadline, so a job passing
  every per-shard check can still miss its deadline under the
  whole-set analysis.  Reservations alone would therefore be
  optimistic; the certificate re-runs the all-or-nothing controller
  in the unrestricted universe over the job's resource *component* --
  the admitted jobs on shards transitively linked to it by resident
  cross-shard jobs (:meth:`ShardedAdmissionEngine.\
_component_candidate`).  Jobs outside the component share no resource
  with anything inside it, so whole-set feasibility factorises over
  components and the restricted check is exact, not an approximation:
  a committed set always has a feasible whole-universe priority
  assignment.
* admitting a *local* job onto a shard that hosts resident
  cross-shard visitors raises the interference those visitors see
  there, which the visitors' other shards cannot observe -- so after
  any such commit the engine re-certifies that shard's component and,
  while the certificate fails, *revokes* the youngest resident
  visitor (highest uid) from every touched shard and parks it in the
  cross-shard queue.  Shard-local jobs are never revoked: their
  per-shard bounds are exact (see :mod:`repro.core.partition`).  The
  same revocation path runs when a local arrival evicts a visitor
  outright -- cells never park cross-shard jobs themselves (the
  ``parkable`` hook), because a lone cell re-admitting one
  unilaterally would break the residency invariant.

The certificate is cheap in the common case: the engine carries the
*standing certified ordering* -- a concrete feasible whole-universe
priority assignment of the admitted set, maintained across departures
(removal is bound-preserving for the float-monotone equations) and
commits.  Appending a newly admitted job at the bottom of that
ordering leaves every incumbent's higher-priority set unchanged, so
for bounds that ignore the lower-priority set a single delay
evaluation of the new job certifies the extended set
(:meth:`ShardedAdmissionEngine._quick_certify`); the full Audsley
search runs only when that probe fails, and Audsley's completeness
for OPA-compatible bounds makes the accept/reject decisions identical
either way.

With ``shards=1`` every job is shard-local and the single cell sees
the identity-restricted universe, so the engine is bitwise identical
to :class:`~repro.online.engine.OnlineAdmissionEngine` -- decisions,
churn, metrics time series -- which the property tests in
``tests/online/test_sharded.py`` replay event-for-event.  The price of
sharding is conservatism on cross-shard jobs only (no-eviction
reservations plus the global certificate, where the oracle's full
controller may evict to make room): acceptance ratios stay within a
couple of percent of the monolithic oracle on cluster-structured
workloads while per-event candidate sets (and so decision cost)
shrink by the shard count -- shard-local traffic never pays for the
whole-universe analysis, which runs only for cross-shard candidates
and for commits onto shards that currently host visitors.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro import obs
from repro.core.admission import AdmissionResult
from repro.core.partition import Routing, ShardMap
from repro.core.schedulability import (
    FLOAT_MONOTONE_EQUATIONS,
    LOWER_AWARE_EQUATIONS,
    SDCA,
    Policy,
    resolve_equation,
)
from repro.core.segments import SegmentCache
from repro.core.system import JobSet
from repro.online.cell import DECISION_MEMO_LIMIT, AdmissionCell
from repro.online.engine import (
    EVENT_ARRIVE,
    EVENT_DEPART,
    OnlineAdmissionEngine,
    OnlineRunResult,
    epoch_validation_failures,
    stream_events,
)
from repro.online.incremental import (
    IncrementalAnalyzer,
    admit_all_or_nothing,
    cold_analysis,
    result_delays,
)
from repro.online.metrics import (
    EventRecord,
    OnlineMetrics,
    admitted_utilisation,
)
from repro.online.streams import OnlineStream


class _Shard:
    """One shard's cell plus the global<->local uid translation."""

    def __init__(self, shard: int, cell: AdmissionCell,
                 members: np.ndarray) -> None:
        self.shard = shard
        self.cell = cell
        #: ``members[local] == global`` (ascending global uids).
        self.members = members
        self.local_of = {int(g): i for i, g in enumerate(members)}

    def local(self, uid: int) -> int:
        return self.local_of[uid]

    def globalise(self, locals_: "tuple[int, ...]") -> tuple[int, ...]:
        """Local uid tuple -> global; ascending in, ascending out
        (``members`` is sorted)."""
        return tuple(int(self.members[i]) for i in locals_)


class ShardedAdmissionEngine:
    """Replay one stream through N admission cells.

    Each cell owns one resource shard's restricted universe and runs
    ordinary single-cell admission for *shard-local* jobs (exact: a
    local job's delay bounds only involve its home shard's
    resources).  A *cross-shard* arrival is admitted in two phases:
    phase 1 asks every touched shard for a no-eviction
    :meth:`~repro.online.cell.AdmissionCell.reserve` (pure, no state
    change); if all accept, the engine *certifies* the admission by
    re-running the all-or-nothing controller over the job's resource
    component in the unrestricted universe -- per-shard checks alone
    would be optimistic, while feasibility factorises exactly over
    components -- and only then commits the reservation on every
    shard (:meth:`~repro.online.cell.AdmissionCell.\
commit_reservation`).  Any failure abandons the phase-1 reservations
    unchanged and parks the job in the engine's cross-shard retry
    queue.  A standing certified priority ordering of the admitted
    set makes the common certificate a single delay evaluation
    (append-at-bottom probe); the full Audsley search runs only when
    the probe fails, with identical accept/reject outcomes.  Commits
    of local jobs onto shards hosting cross-shard visitors re-certify
    that component and revoke the youngest visitor while it fails.
    See the module docstring for why each step is sound.

    Feed events through :meth:`process` (the ``repro.serve`` service
    does), or :meth:`run` to replay the whole stream; both produce
    the same :class:`~repro.online.engine.OnlineRunResult` via
    :meth:`result`.  With ``shards=1`` decisions are bitwise
    identical to the monolithic
    :class:`~repro.online.engine.OnlineAdmissionEngine`.

    Parameters
    ----------
    stream:
        The materialised event stream (uids 0..k-1, like the
        monolithic engine).
    shards:
        Shard count (resources split into contiguous blocks per stage
        via :meth:`~repro.core.partition.ShardMap.blocked`) or a
        pre-built :class:`~repro.core.partition.ShardMap`.
    policy / mode / retry_limit / validate_every / kernel:
        As for :class:`~repro.online.engine.OnlineAdmissionEngine`;
        ``retry_limit`` bounds each cell's queue *and* the engine's
        cross-shard queue.  ``validate_every`` replays every k-th
        accepted epoch -- the *global* admitted set under its
        whole-universe certificate ordering -- through the simulator.
    record_decisions:
        Keep ``(index, kind, uid, candidate, result)`` triples (global
        uids) on ``decisions``; cross-shard reservations log one
        ``reserve`` entry per touched shard plus one ``certify`` entry
        for the whole-universe check.
    """

    def __init__(self, stream: OnlineStream, *,
                 shards: "int | ShardMap" = 1,
                 policy: "str | Policy" = Policy.PREEMPTIVE,
                 mode: str = "incremental",
                 retry_limit: int = 16,
                 validate_every: int = 0,
                 kernel: str = "paired",
                 record_decisions: bool = False,
                 slate_window: float = 0.0) -> None:
        if retry_limit < 0:
            raise ValueError(
                f"retry_limit must be >= 0, got {retry_limit}")
        if slate_window < 0.0:
            raise ValueError(
                f"slate_window must be >= 0, got {slate_window}")
        self._stream = stream
        self._policy = policy
        self._mode = mode
        self._kernel = kernel
        self._retry_limit = retry_limit
        self._validate_every = validate_every
        self._slate_window = float(slate_window)
        self._universe: "JobSet | None" = (
            stream.universe() if stream.events else None)
        self._departure_of = {event.uid: event.departure
                              for event in stream.events}

        if self._universe is not None:
            shard_map = (shards if isinstance(shards, ShardMap)
                         else ShardMap.blocked(self._universe.system,
                                               int(shards)))
            self._shard_map: "ShardMap | None" = shard_map
            self._routing: "Routing | None" = \
                shard_map.route(self._universe)
            cache = (SegmentCache(self._universe)
                     if mode == "incremental" else None)
            self._cache = cache
            self._shards = [
                self._build_shard(shard, cache, retry_limit, kernel)
                for shard in range(shard_map.num_shards)]
        else:
            self._shard_map = None
            self._routing = None
            self._cache = None
            self._shards = []

        #: (index, kind, uid, candidate, result) log (global uids).
        self.decisions: "list[tuple]" = []
        self._record_decisions = record_decisions

        self._admitted: set[int] = set()
        self._cross_retry: list[int] = []
        self._seen: set[int] = set()
        self._metrics = OnlineMetrics(self._universe)
        self._heaviness: "np.ndarray | None" = None
        #: Whole-universe certificate state (lazy: shard-local traffic
        #: never builds or touches it).
        self._global_inc: "IncrementalAnalyzer | None" = None
        self._global_memo: "dict[tuple, AdmissionResult | None] | None" = (
            {} if mode == "incremental" else None)
        #: Standing certified priority ordering (highest first) of the
        #: whole admitted set: the constructive witness behind the
        #: one-bound fast path (:meth:`_quick_certify`).  Maintained
        #: only in incremental mode under float-monotone bounds that
        #: ignore the lower-priority set (removals and bottom-appends
        #: are then provably bound-preserving); ``None`` whenever
        #: unavailable or no longer trusted.
        equation = resolve_equation(policy)
        self._order_ok = (mode == "incremental"
                          and equation in FLOAT_MONOTONE_EQUATIONS
                          and equation not in LOWER_AWARE_EQUATIONS)
        self._order: "list[int] | None" = [] if self._order_ok else None
        self._quick_certifies = 0
        #: Certify-failure witnesses for queued cross-shard jobs:
        #: ``uid -> frozenset(candidate minus uid)`` at the failed
        #: attempt.  Under the same monotone gate, infeasibility is
        #: antitone in the job set (restricting a feasible assignment
        #: to a subset only shrinks higher-priority sets), so while
        #: every witness member is still admitted a retry would
        #: provably fail again and is skipped outright.
        self._cross_failed: "dict[int, frozenset]" = {}
        self._certify_seconds = 0.0
        self._certify_count = 0
        self._accept_count = 0
        self._validation_failures: list[str] = []
        #: Cross-shard accounting surfaced in ``summary["sharding"]``.
        self._cross_accepts = 0
        self._cross_rejects = 0
        self._cross_certify_rejects = 0
        self._cross_retry_accepts = 0
        self._revocations = 0
        self._event_index = 0
        #: Registry counters mirroring the certificate tallies above
        #: (pre-resolved children: per-event cost is one guarded
        #: increment; see ``repro.obs``).
        registry = obs.get_registry()
        certificates = registry.counter(
            "repro_certificates_total",
            "Whole-universe certificate evaluations by path.",
            labelnames=("path",))
        self._obs_certify = {
            "quick": certificates.labels(path="quick"),
            "full": certificates.labels(path="full"),
        }
        self._obs_revocations = registry.counter(
            "repro_certificate_revocations_total",
            "Cross-shard reservations revoked by a failed "
            "certificate.")
        self._obs_certify_rejects = registry.counter(
            "repro_cross_certify_rejects_total",
            "Cross-shard admissions rejected by the certificate.")

    def _build_shard(self, shard: int, cache: "SegmentCache | None",
                     retry_limit: int, kernel: str) -> _Shard:
        routing = self._routing
        members = routing.members(shard)
        if members.size == 0:
            cell = AdmissionCell(None, policy=self._policy,
                                 mode=self._mode,
                                 retry_limit=retry_limit,
                                 kernel=kernel)
            return _Shard(shard, cell, members)
        indices = [int(g) for g in members]
        sub = self._universe.restrict(indices)
        sub_cache = (cache.restrict(sub, indices)
                     if cache is not None else None)
        departure_of = {i: self._departure_of[int(g)]
                        for i, g in enumerate(members)}
        cross = routing.cross

        def parkable(local_uid: int,
                     members=members, cross=cross) -> bool:
            return not bool(cross[int(members[local_uid])])

        cell = AdmissionCell(sub, policy=self._policy,
                             mode=self._mode, retry_limit=retry_limit,
                             departure_of=departure_of,
                             cache=sub_cache, kernel=kernel,
                             parkable=parkable)
        return _Shard(shard, cell, members)

    # -- read-only state ----------------------------------------------

    @property
    def universe(self) -> "JobSet | None":
        return self._universe

    @property
    def shard_map(self) -> "ShardMap | None":
        return self._shard_map

    @property
    def routing(self) -> "Routing | None":
        return self._routing

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def cells(self) -> "list[AdmissionCell]":
        return [shard.cell for shard in self._shards]

    @property
    def admitted(self) -> "frozenset[int]":
        return frozenset(self._admitted)

    @property
    def cross_retry_queue(self) -> "tuple[int, ...]":
        return tuple(self._cross_retry)

    @property
    def decision_seconds(self) -> float:
        return (self._certify_seconds +
                sum(s.cell.decision_seconds for s in self._shards))

    @property
    def decision_count(self) -> int:
        return (self._certify_count + self._quick_certifies +
                sum(s.cell.decision_count for s in self._shards))

    @property
    def validation_failures(self) -> "list[str]":
        return list(self._validation_failures)

    # -- shared bookkeeping (mirrors the monolithic engine) -----------

    def _log_decision(self, index: int, kind: str, uid: int,
                      candidate: "tuple[int, ...]",
                      result) -> None:
        if self._record_decisions:
            self.decisions.append(
                (index, kind, uid, tuple(candidate), result))

    def _snapshot(self, index: int, now: float, kind: str, uid: int,
                  decision: str, evicted: "tuple[int, ...]",
                  flips: int, latency: float) -> EventRecord:
        metrics = self._metrics
        record = EventRecord(
            index=index, time=now, kind=kind, uid=uid,
            decision=decision, evicted=evicted,
            admitted=len(self._admitted),
            acceptance_ratio=metrics.acceptance_ratio(),
            rejected_heaviness=metrics.rejected_heaviness(self._seen),
            utilisation=self._utilisation(),
            rank_changes=flips, latency=latency)
        metrics.record(record)
        return record

    def _utilisation(self) -> float:
        if self._universe is None or not self._admitted:
            return 0.0
        if self._heaviness is None:
            from repro.workload.heaviness import heaviness_matrix

            self._heaviness = heaviness_matrix(self._universe)
        mask = np.zeros(self._universe.num_jobs, dtype=bool)
        mask[sorted(self._admitted)] = True
        return admitted_utilisation(self._universe, mask,
                                    heaviness=self._heaviness)

    def _enqueue_cross(self, uid: int) -> None:
        """Park a cross-shard job in the engine-level queue (bounded
        FIFO, same overflow rule as the cells')."""
        if self._retry_limit == 0:
            self._metrics.retry_drops += 1
            return
        self._cross_retry.append(uid)
        if len(self._cross_retry) > self._retry_limit:
            self._cross_retry.pop(0)
            self._metrics.retry_drops += 1

    def _touched(self, uid: int) -> "list[_Shard]":
        return [self._shards[s] for s in self._routing.touched[uid]]

    # -- whole-universe certificate -----------------------------------

    def _global_analyzer(self) -> IncrementalAnalyzer:
        if self._global_inc is None:
            self._global_inc = IncrementalAnalyzer(
                self._universe, self._policy,
                cache=self._cache, kernel=self._kernel)
        return self._global_inc

    def _order_remove(self, uid: int) -> None:
        """Drop ``uid`` from the standing certified ordering.  Removal
        is always sound under the fast-path gate: float-monotone
        bounds can never increase when a higher-priority set shrinks,
        so the surviving assignment stays feasible."""
        if self._order is None:
            return
        try:
            self._order.remove(uid)
        except ValueError:
            self._order = None  # bookkeeping drift: stop trusting it

    def _order_rebase_shard(self, home: _Shard) -> None:
        """Re-sync ``home``'s block of the standing ordering from its
        cell after a commit onto a *visitor-free* shard.

        With no resident cross-shard visitors, every user of
        ``home``'s resources is a cell member, so the cell's own exact
        all-or-nothing ordering certifies the block outright.  Placing
        the block contiguously at the bottom removes ``home`` members
        from every outside job's higher-priority set (bound-preserving
        under the float-monotone gate) and adds nothing above any
        block member that the cell's analysis did not already count.
        """
        order = self._order
        if order is None:
            return
        members = {int(home.members[i]) for i in home.cell.admitted}
        ranks = home.cell.ranks
        block = sorted(members, key=lambda uid: ranks[home.local(uid)])
        self._order = [u for u in order if u not in members] + block
        if set(self._order) != self._admitted:
            self._order = None

    def _order_merge(self, candidate: "tuple[int, ...]",
                     result: AdmissionResult) -> None:
        """Fold a fresh certificate's ordering into the standing one:
        the certified block lands at the bottom and survivors outside
        ``candidate`` keep their relative order -- they share no
        resource with the block (:meth:`_component_candidate`), so
        neither move touches any bound."""
        if not self._order_ok:
            return
        block = [candidate[i]
                 for i in np.argsort(result.ordering, kind="stable")]
        if self._order is not None:
            members = set(candidate)
            self._order = [u for u in self._order
                           if u not in members] + block
        elif set(candidate) == self._admitted:
            self._order = block
        if self._order is not None and \
                set(self._order) != self._admitted:
            self._order = None

    def _universe_test(self) -> SDCA:
        """Whole-universe single-bound test over the persistent
        analyzer (explicit higher/active masks; no hidden state)."""
        return SDCA(self._universe, self._policy,
                    analyzer=self._global_analyzer().analyzer)

    #: Splice positions tried above the bottom before falling back to
    #: the full Audsley search (each rung costs a handful of single
    #: bound evaluations; a full search costs a monolith-sized event).
    _SPLICE_RUNGS = 4

    def _splice_verified(self, home: _Shard, uid: int) -> bool:
        """Second fast path for committing local ``uid`` onto a
        visitor-hosting shard: climb the standing ordering bottom-up,
        splicing ``uid`` just above the ``k`` lowest-positioned home
        members (``k = 1..{_SPLICE_RUNGS}``) and verifying only what a
        splice can actually disturb.

        Jobs above the splice point keep their higher-priority sets.
        Jobs below it gain exactly ``uid`` -- a bit-exact no-op for
        every job sharing no resource with it (shard-local footprints
        make that the vast majority), so only ``uid`` itself and the
        resource-sharing jobs below the splice need fresh bound
        evaluations.  Climbing helps because ``uid``'s own bound is
        monotone in the jobs above it: each rung strictly shrinks its
        interferer set relative to the (already failed) bottom-append
        probe.  Any rung where every evaluation passes exhibits a
        feasible whole-universe assignment; if all rungs fail the
        caller falls back to the full Audsley search, so accept/reject
        decisions are identical either way.
        """
        order = self._order
        if order is None:
            return False
        start = time.perf_counter()
        try:
            home_pos = [i for i, u in enumerate(order)
                        if u in home.local_of]
            test = self._universe_test()
            n = self._universe.num_jobs
            R = np.asarray(self._universe.R)
            active = np.zeros(n, dtype=bool)
            active[sorted(self._admitted)] = True
            for k in range(1, self._SPLICE_RUNGS + 1):
                if k > len(home_pos):
                    return False
                splice = home_pos[-k]
                moved = order[:splice] + [uid] + order[splice:]
                higher = np.zeros(n, dtype=bool)
                higher[order[:splice]] = True
                if not test(uid, higher, active=active):
                    continue  # climb: fewer interferers next rung
                disturbed = [u for u in order[splice:]
                             if bool((R[u] == R[uid]).any())]
                ok = True
                for job in disturbed:
                    higher = np.zeros(n, dtype=bool)
                    higher[moved[:moved.index(job)]] = True
                    if not test(job, higher, active=active):
                        ok = False
                        break
                if ok:
                    self._order = moved
                    return True
            return False
        finally:
            self._certify_seconds += time.perf_counter() - start
            self._quick_certifies += 1
            self._obs_certify["quick"].inc()

    def _quick_certify(self, uid: int) -> bool:
        """Constructive one-bound extension of the standing
        certificate: is the certified ordering still feasible with
        ``uid`` appended at lowest priority?

        Appending at the bottom leaves every incumbent's
        higher-priority set unchanged, and the fast-path gate
        restricts to bounds that ignore the lower-priority set, so the
        incumbents' bounds are *literally* unchanged -- only ``uid``'s
        own bound (the whole admitted set above it) needs evaluating.
        A pass exhibits a feasible whole-universe assignment, the
        exact invariant the full certificate establishes; a fail only
        means "not feasible at the bottom", and the caller falls back
        to the full Audsley search -- which is complete for the
        OPA-compatible bounds, so accept/reject decisions are
        identical with or without this fast path.
        """
        order = self._order
        if order is None:
            return False
        rest = self._admitted - {uid}
        if set(order) != rest:
            self._order = None
            return False
        start = time.perf_counter()
        try:
            test = self._universe_test()
            higher = np.zeros(self._universe.num_jobs, dtype=bool)
            if rest:
                higher[sorted(rest)] = True
            active = higher.copy()
            active[uid] = True
            if test(uid, higher, active=active):
                order.append(uid)
                return True
            return False
        finally:
            self._certify_seconds += time.perf_counter() - start
            self._quick_certifies += 1
            self._obs_certify["quick"].inc()

    def _component_candidate(self, seeds: "Iterable[int]",
                             extra: "int | None" = None
                             ) -> tuple[int, ...]:
        """Admitted jobs (plus ``extra``) in the shard *component*
        reachable from ``seeds``.

        Two jobs interfere only when they share a resource (see
        :mod:`repro.core.partition`), and shards partition resources,
        so only admitted cross-shard jobs couple shards.  Taking the
        transitive closure of ``seeds`` under those couplings yields a
        set of shards whose residents share no resource with any job
        outside it -- whole-set feasibility therefore factorises over
        such components, and certifying the affected component alone
        is exactly as sound as certifying the full admitted set, at a
        fraction of the analysis cost (the candidate excludes every
        untouched shard's residents).
        """
        routing = self._routing
        shards = set(seeds)
        if extra is not None:
            shards.update(routing.touched[extra])
        links = [set(routing.touched[uid]) for uid in self._admitted
                 if routing.cross[uid]]
        grew = True
        while grew:
            grew = False
            for touched in links:
                if touched & shards and not touched <= shards:
                    shards |= touched
                    grew = True
        members = {uid for uid in self._admitted
                   if shards.intersection(routing.touched[uid])}
        if extra is not None:
            members.add(extra)
        return tuple(sorted(members))

    def _certify(self, candidate: "tuple[int, ...]"
                 ) -> "AdmissionResult | None":
        """All-or-nothing admission of ``candidate`` (ascending global
        uids) over the *unrestricted* universe: the schedulability
        certificate of the global admitted set (or of one resource
        component of it -- see :meth:`_component_candidate`).

        Per-shard reservations see only their own members as
        interferers, so they under-count a cross-shard job's
        end-to-end delay; this check is the one place the full
        interference picture is evaluated.  Outcomes are memoised on
        the exact candidate tuple (incremental mode), mirroring the
        cells' decision memo.
        """
        start = time.perf_counter()
        try:
            if self._global_memo is not None and \
                    candidate in self._global_memo:
                return self._global_memo[candidate]
            if self._mode == "cold":
                analysis = cold_analysis(self._universe, candidate,
                                         self._policy)
            else:
                analysis = self._global_analyzer().subset(candidate)
            result = admit_all_or_nothing(analysis, mode=self._mode)
            if self._global_memo is not None:
                if result is not None and self._mode == "incremental":
                    # Same thin-rebuilder swap as the cells' decision
                    # memo: don't let parked certificates pin their
                    # per-event subset analyses.
                    inc = self._global_analyzer()
                    result.rebind_delays(
                        lambda: result_delays(
                            inc.subset(list(candidate)), result))
                if len(self._global_memo) >= DECISION_MEMO_LIMIT:
                    self._global_memo.pop(
                        next(iter(self._global_memo)))
                self._global_memo[candidate] = result
            return result
        finally:
            self._certify_seconds += time.perf_counter() - start
            self._certify_count += 1
            self._obs_certify["full"].inc()

    def _visitors_on(self, home: _Shard) -> "list[int]":
        """Admitted cross-shard jobs resident on ``home``, ascending
        global uids."""
        routing = self._routing
        return sorted(uid for uid in self._admitted
                      if routing.cross[uid]
                      and home.shard in routing.touched[uid])

    def _reconfirm_after(self, home: _Shard, uid: int
                         ) -> "tuple[list[int], float]":
        """Re-certify ``home``'s resource component after committing
        ``uid`` onto ``home``.

        A new resident raises the interference ``home``'s cross-shard
        visitors see there, which their other shards cannot observe;
        shard-local jobs are unaffected (their per-shard bounds are
        exact).  Jobs outside ``home``'s component share no resource
        with the new resident, so their standing certificates are
        untouched (:meth:`_component_candidate`).  The cheap paths run
        first: a visitor-free ``home`` needs no global analysis at all
        (the cell's ordering is exact -- the standing order just
        re-syncs its block), and :meth:`_quick_certify` settles most
        of the rest with a single bound evaluation.  Otherwise, while
        the full certificate fails, the youngest visitor on ``home``
        (highest uid) is revoked from every touched shard and parked
        in the cross-shard queue; revocation can split the component,
        so the candidate is recomputed each round.  Returns the
        revoked uids (ascending) and the wall-clock seconds spent, for
        the caller's event record.
        """
        visitors = self._visitors_on(home)
        if not visitors:
            self._order_rebase_shard(home)
            return [], 0.0
        start = time.perf_counter()
        if self._quick_certify(uid) or \
                self._splice_verified(home, uid):
            return [], time.perf_counter() - start
        revoked: list[int] = []
        while True:
            candidate = self._component_candidate((home.shard,))
            result = self._certify(candidate)
            if result is not None:
                self._order_merge(candidate, result)
                break
            if not visitors:
                # Unreachable by construction: with no visitors left
                # on ``home`` the set is the pre-event certified set
                # minus removals plus exactly-analysed local jobs.
                self._order = None
                break
            victim = visitors.pop()
            for shard in self._touched(victim):
                if shard.cell.evict(shard.local(victim)):
                    self._revocations += 1
                    self._obs_revocations.inc()
            self._admitted.discard(victim)
            self._order_remove(victim)
            revoked.append(victim)
            self._enqueue_cross(victim)
        return sorted(revoked), time.perf_counter() - start

    def _maybe_validate(self, index: int) -> None:
        """Every k-th accept: replay the global admitted set through
        the simulator under its certificate ordering (the sharded
        counterpart of the monolithic engine's validation hook)."""
        self._accept_count += 1
        if not self._validate_every or \
                self._accept_count % self._validate_every:
            return
        candidate = sorted(self._admitted)
        if not candidate:
            return
        certificate = self._certify(tuple(candidate))
        if certificate is None:
            self._validation_failures.append(
                f"event {index}: admitted set has no feasible "
                f"whole-universe priority assignment")
            return
        self._validation_failures.extend(epoch_validation_failures(
            self._universe, self._policy, index, certificate,
            candidate))

    # -- local (single-shard) arrivals --------------------------------

    def _local_arrival(self, index: int, now: float, uid: int,
                       home: _Shard) -> None:
        event = home.cell.arrival(home.local(uid))
        evicted = home.globalise(event.evicted)
        self._log_decision(index, "arrive", uid,
                           home.globalise(event.candidate),
                           event.result)
        if event.decision == "accept":
            self._admitted.add(uid)
        for g in evicted:
            self._admitted.discard(g)
            self._order_remove(g)
        self._metrics.ever_admitted |= self._admitted
        self._metrics.evictions += len(evicted)
        self._metrics.rank_changes += event.flips
        self._metrics.retry_drops += event.retry_drops
        # Cross-shard evictees the cell could not park: revoke their
        # residency on every other touched shard, then park here.
        for local_uid in event.escalated:
            g = int(home.members[local_uid])
            if g == uid:
                self._enqueue_cross(g)
                continue
            for other in self._touched(g):
                if other.shard != home.shard:
                    if other.cell.evict(other.local(g)):
                        self._revocations += 1
                        self._obs_revocations.inc()
            self._enqueue_cross(g)
        # A new resident may push a surviving visitor's end-to-end
        # bound past its deadline; re-certify and revoke if needed.
        # A rejected arrival can only shrink the set (discard
        # cascade), which cannot break the standing certificate.
        reconfirm_seconds = 0.0
        if event.decision == "accept":
            revoked, reconfirm_seconds = \
                self._reconfirm_after(home, uid)
            if revoked:
                self._metrics.evictions += len(revoked)
                evicted = tuple(sorted(set(evicted) | set(revoked)))
        self._snapshot(index, now, "arrive", uid, event.decision,
                       evicted, event.flips,
                       event.seconds + reconfirm_seconds)
        if event.decision == "accept":
            self._maybe_validate(index)

    def _local_arrival_slate(self, arrivals: "list[tuple[float, int]]",
                             home: _Shard) -> None:
        """Micro-batched same-home arrivals on a *visitor-free* shard.

        Every slate member is shard-local (per-shard bounds exact) and
        a local arrival cannot create cross-shard visitors, so ``home``
        stays visitor-free for the whole slate and each accept's
        re-certification is exactly the no-visitor fast path of
        :meth:`_reconfirm_after` -- a standing-order block resync with
        no global analysis.  The resync reads the cell's *current*
        ordering and is idempotent, so one rebase after the slate
        lands the same standing order as rebasing after every accept.
        Event absorption otherwise mirrors :meth:`_local_arrival`,
        replayed per member in slate order (a fallback slate can admit
        then evict a member mid-slate; folding ``ever_admitted`` per
        event keeps those transients, identical to sequential
        processing).  Escalations are impossible here (every evictee of
        a visitor-free cell is shard-local and parks in the cell's own
        retry queue) but are absorbed defensively all the same.
        """
        uids = [uid for _, uid in arrivals]
        events = home.cell.arrival_slate(
            [home.local(uid) for uid in uids])
        accepted = False
        for (now, uid), event in zip(arrivals, events):
            index = self._event_index
            self._event_index += 1
            self._seen.add(uid)
            self._metrics.arrivals += 1
            evicted = home.globalise(event.evicted)
            if event.decision == "accept":
                self._admitted.add(uid)
                accepted = True
            for g in evicted:
                self._admitted.discard(g)
                self._order_remove(g)
            self._metrics.ever_admitted |= self._admitted
            self._metrics.evictions += len(evicted)
            self._metrics.rank_changes += event.flips
            self._metrics.retry_drops += event.retry_drops
            for local_uid in event.escalated:
                g = int(home.members[local_uid])
                if g != uid:
                    for other in self._touched(g):
                        if other.shard != home.shard:
                            if other.cell.evict(other.local(g)):
                                self._revocations += 1
                                self._obs_revocations.inc()
                self._enqueue_cross(g)
            self._snapshot(index, now, "arrive", uid, event.decision,
                           evicted, event.flips, event.seconds)
        if accepted:
            self._order_rebase_shard(home)

    # -- cross-shard arrivals (two-phase reservation) -----------------

    def _cross_arrival(self, index: int, now: float, uid: int,
                       *, kind: str = "arrive") -> bool:
        """Two-phase reservation of ``uid`` on every touched shard,
        guarded by the whole-universe certificate.  Returns
        acceptance; on rejection nothing changed anywhere."""
        failed = self._cross_failed.get(uid)
        if failed is not None:
            if failed <= self._admitted:
                # The failed candidate is still wholly admitted, so by
                # monotonicity this attempt cannot succeed; skip the
                # reservations and the certificate entirely (failed
                # retry attempts leave no record either way).
                return False
            del self._cross_failed[uid]
        touched = self._touched(uid)
        reservations = []
        seconds = 0.0
        for shard in touched:
            reservation = shard.cell.reserve(shard.local(uid))
            seconds += reservation.seconds
            self._log_decision(index, "reserve", uid,
                               shard.globalise(reservation.candidate),
                               reservation.result)
            reservations.append((shard, reservation))
            if not reservation.accepted:
                # Abort: phase 1 is pure, so the earlier shards need
                # no rollback.  Failed retry attempts leave no record,
                # matching the monolithic engine's retry pass.
                if kind == "arrive":
                    self._snapshot(index, now, kind, uid, "reject",
                                   (), 0, seconds)
                return False
        # Phase 1b: every touched shard said yes, but each bounded the
        # job's end-to-end delay against its own members only.  Only
        # the whole-universe analysis sees the combined interference,
        # so commit requires its certificate too -- the one-bound
        # standing-order extension when it applies, else the full
        # Audsley search restricted to the job's resource component,
        # which is exact (jobs outside it share no resource with
        # anything inside).
        start = time.perf_counter()
        quick = self._quick_certify(uid)
        candidate: "tuple[int, ...]" = ()
        certificate = None
        if not quick:
            candidate = self._component_candidate((), extra=uid)
            certificate = self._certify(candidate)
        seconds += time.perf_counter() - start
        if quick:
            self._log_decision(index, "certify-fast", uid, (), True)
        else:
            self._log_decision(index, "certify", uid, candidate,
                               certificate)
            if certificate is None:
                self._cross_certify_rejects += 1
                self._obs_certify_rejects.inc()
                if self._order_ok:
                    self._cross_failed[uid] = \
                        frozenset(candidate) - {uid}
                if kind == "arrive":
                    self._snapshot(index, now, kind, uid, "reject",
                                   (), 0, seconds)
                return False
        flips = 0
        for shard, reservation in reservations:
            event = shard.cell.commit_reservation(reservation)
            flips += event.flips
            seconds += event.seconds
        self._admitted.add(uid)
        self._cross_failed.pop(uid, None)
        if not quick:
            self._order_merge(candidate, certificate)
        self._metrics.ever_admitted |= self._admitted
        self._metrics.rank_changes += flips
        self._snapshot(index, now, kind, uid, "accept", (), flips,
                       seconds)
        self._maybe_validate(index)
        return True

    def _on_arrival(self, index: int, now: float, uid: int) -> None:
        self._seen.add(uid)
        self._metrics.arrivals += 1
        if not self._routing.cross[uid]:
            home = self._shards[int(self._routing.home[uid])]
            self._local_arrival(index, now, uid, home)
            return
        if self._cross_arrival(index, now, uid):
            self._cross_accepts += 1
        else:
            self._cross_rejects += 1
            self._enqueue_cross(uid)

    # -- departures and retries ---------------------------------------

    def _on_departure(self, index: int, now: float, uid: int) -> None:
        if uid in self._admitted:
            self._admitted.discard(uid)
            self._order_remove(uid)
            seconds = 0.0
            for shard in self._touched(uid):
                event = shard.cell.departure(shard.local(uid))
                seconds += event.seconds
            self._snapshot(index, now, "depart", uid, "free", (), 0,
                           seconds)
            self._retry_pass(index, now, self._touched(uid))
            return
        if uid in self._cross_retry:
            self._cross_retry.remove(uid)
            self._cross_failed.pop(uid, None)
            self._metrics.expired += 1
            self._snapshot(index, now, "depart", uid, "expire", (),
                           0, 0.0)
            return
        decision = "noop"
        seconds = 0.0
        if not self._routing.cross[uid]:
            home = self._shards[int(self._routing.home[uid])]
            event = home.cell.departure(home.local(uid))
            decision = event.decision  # "expire" (parked) or "noop"
            seconds = event.seconds
            if decision == "expire":
                self._metrics.expired += 1
        self._snapshot(index, now, "depart", uid, decision, (), 0,
                       seconds)

    def _retry_pass(self, index: int, now: float,
                    touched: "list[_Shard]") -> None:
        """Re-admission after freed capacity: each touched cell's own
        FIFO pass first (ascending shard order), then the engine's
        cross-shard queue through fresh two-phase reservations."""
        for shard in touched:
            for event in shard.cell.retry_pass(now):
                uid = int(shard.members[event.uid])
                self._log_decision(index, "retry", uid,
                                   shard.globalise(event.candidate),
                                   event.result)
                if event.result is None:
                    continue
                self._admitted.add(uid)
                self._metrics.ever_admitted |= self._admitted
                self._metrics.rank_changes += event.flips
                self._metrics.retry_accepts += 1
                # A re-admitted local job is a new resident too: the
                # shard's visitors must survive the global re-check.
                revoked, reconfirm_seconds = \
                    self._reconfirm_after(shard, uid)
                if revoked:
                    self._metrics.evictions += len(revoked)
                self._snapshot(index, now, "retry", uid, "accept",
                               tuple(revoked), event.flips,
                               event.seconds + reconfirm_seconds)
                self._maybe_validate(index)
        for uid in list(self._cross_retry):
            if self._departure_of[uid] <= now:
                continue  # its own departure event expires it
            if self._cross_arrival(index, now, uid, kind="retry"):
                self._cross_retry.remove(uid)
                self._metrics.retry_accepts += 1
                self._cross_retry_accepts += 1

    # -- driver -------------------------------------------------------

    def _sharding_summary(self) -> dict:
        routing = self._routing
        per_shard = []
        for shard in self._shards:
            members = shard.members
            per_shard.append({
                "shard": shard.shard,
                "jobs": int(members.size),
                "local_jobs": (int(routing.local_jobs(
                    shard.shard).size) if routing else 0),
                "admitted": len(shard.cell.admitted),
                "decisions": shard.cell.decision_count,
            })
        return {
            "shards": len(self._shards),
            "cross_jobs": routing.num_cross if routing else 0,
            "cross_accepts": self._cross_accepts,
            "cross_rejects": self._cross_rejects,
            # Admission attempts (arrival *and* retry) rejected by the
            # whole-universe certificate after every per-shard
            # reservation had accepted -- the gap the certificate
            # exists to close.
            "cross_certify_rejects": self._cross_certify_rejects,
            "cross_retry_accepts": self._cross_retry_accepts,
            "revocations": self._revocations,
            "global_certifies": self._certify_count,
            # One-bound standing-order probes (pass or fail); a pass
            # replaces one full certificate above.
            "quick_certifies": self._quick_certifies,
            "per_shard": per_shard,
        }

    def process(self, now: float, kind: str,
                uid: int) -> "list[EventRecord]":
        """Feed one timestamped event (``"arrive"`` | ``"depart"``)
        and return the event records it appended -- the sharded
        counterpart of :meth:`~repro.online.engine.
        OnlineAdmissionEngine.process`, with identical ordering
        obligations on the caller."""
        if kind not in ("arrive", "depart"):
            raise ValueError(
                f"kind must be 'arrive' or 'depart', got {kind!r}")
        before = len(self._metrics.records)
        index = self._event_index
        self._event_index += 1
        if kind == "arrive":
            self._on_arrival(index, now, uid)
        else:
            self._on_departure(index, now, uid)
        return self._metrics.records[before:]

    def process_slate(self, arrivals: "list[tuple[float, int]]"
                      ) -> "list[EventRecord]":
        """Feed a coalesced ``(time, uid)`` arrival slate; the sharded
        counterpart of :meth:`~repro.online.engine.
        OnlineAdmissionEngine.process_slate`.

        The micro-batched path additionally requires every member to
        be shard-local with one shared home shard hosting no
        cross-shard visitors (the :meth:`_local_arrival_slate`
        soundness conditions); anything else degrades to sequential
        :meth:`process` calls with identical outcomes.  Returns one
        event record per member, in slate order.
        """
        arrivals = [(float(now), int(uid)) for now, uid in arrivals]
        uids = [uid for _, uid in arrivals]
        routing = self._routing
        home: "_Shard | None" = None
        slate_ok = (len(arrivals) > 1
                    and not self._record_decisions
                    and not self._validate_every
                    and routing is not None
                    and len(set(uids)) == len(uids)
                    and not any(uid in self._admitted for uid in uids)
                    and all(arrivals[k][0] <= arrivals[k + 1][0]
                            for k in range(len(arrivals) - 1))
                    and not any(routing.cross[uid] for uid in uids))
        if slate_ok:
            homes = {int(routing.home[uid]) for uid in uids}
            if len(homes) == 1:
                home = self._shards[homes.pop()]
                slate_ok = not self._visitors_on(home)
            else:
                slate_ok = False
        before = len(self._metrics.records)
        if slate_ok and home is not None:
            self._local_arrival_slate(arrivals, home)
        else:
            for now, uid in arrivals:
                self.process(now, "arrive", uid)
        return self._metrics.records[before:]

    def result(self) -> OnlineRunResult:
        """The run outcome over everything processed so far."""
        config = self._stream.config
        summary = self._metrics.summary()
        summary["sharding"] = self._sharding_summary()
        return OnlineRunResult(
            seed=self._stream.seed,
            stream_kind=config.kind,
            policy=resolve_equation(self._policy),
            mode=self._mode,
            horizon=float(config.horizon),
            records=self._metrics.records,
            summary=summary,
            final_admitted=sorted(self._admitted),
            validation_failures=self._validation_failures,
            shards=len(self._shards),
            kernel=self._kernel)

    def run(self) -> OnlineRunResult:
        """Process every event chronologically and return the result.

        With ``slate_window > 0`` consecutive arrivals within the
        window that share one home shard, are all shard-local, and
        land on a shard hosting no cross-shard visitors are coalesced
        through :meth:`_local_arrival_slate`; everything else (cross
        jobs, departures, mixed-home runs, visitor-laden shards) takes
        the stock per-event path.  Decision recording and periodic
        validation are per-event features, so either disables
        coalescing, exactly as in the monolithic engine.
        """
        events = stream_events(self._stream)
        if (self._slate_window <= 0.0 or self._record_decisions
                or self._validate_every):
            for now, kind, uid in events:
                self.process(
                    now,
                    "arrive" if kind == EVENT_ARRIVE else "depart",
                    uid)
            return self.result()
        routing = self._routing
        total = len(events)
        i = 0
        while i < total:
            now, kind, uid = events[i]
            if kind != EVENT_ARRIVE:
                self.process(now, "depart", uid)
                i += 1
                continue
            if routing is None or routing.cross[uid]:
                self.process(now, "arrive", uid)
                i += 1
                continue
            home_id = int(routing.home[uid])
            j = i + 1
            while (j < total and events[j][1] == EVENT_ARRIVE
                   and events[j][0] - now <= self._slate_window
                   and not routing.cross[events[j][2]]
                   and int(routing.home[events[j][2]]) == home_id):
                j += 1
            home = self._shards[home_id]
            if j - i == 1 or self._visitors_on(home):
                for now_, _, uid_ in events[i:j]:
                    self.process(now_, "arrive", uid_)
            else:
                self._local_arrival_slate(
                    [(t, u) for t, _, u in events[i:j]], home)
            i = j
        return self.result()


def sharded_acceptance_report(stream: OnlineStream, *,
                              shards: "int | ShardMap",
                              policy: "str | Policy" = Policy.PREEMPTIVE,
                              mode: str = "incremental",
                              retry_limit: int = 16,
                              kernel: str = "paired") -> dict:
    """Acceptance of the sharded engine vs the monolithic oracle.

    Runs the same stream through both engines and reports their
    acceptance ratios plus the (signed) delta -- the cost of
    conservative cross-shard admission (no-eviction reservations plus
    the whole-universe certificate, where the oracle's full controller
    may evict to make room).  ``acceptance_delta`` is sharded minus
    oracle, so more negative means more conservatism; small positive
    deltas remain possible through path dependence (a job the oracle
    evicted early may depart before the sharded engine ever has to
    reject anything for it).
    """
    oracle = OnlineAdmissionEngine(
        stream, policy=policy, mode=mode, retry_limit=retry_limit,
        kernel=kernel).run()
    sharded = ShardedAdmissionEngine(
        stream, shards=shards, policy=policy, mode=mode,
        retry_limit=retry_limit, kernel=kernel).run()
    oracle_ratio = float(oracle.summary["acceptance_ratio"])
    sharded_ratio = float(sharded.summary["acceptance_ratio"])
    return {
        "shards": sharded.summary["sharding"]["shards"],
        "cross_jobs": sharded.summary["sharding"]["cross_jobs"],
        "oracle_acceptance": oracle_ratio,
        "sharded_acceptance": sharded_ratio,
        "acceptance_delta": sharded_ratio - oracle_ratio,
    }
