"""Per-algorithm wall-clock on one paper-default test case (n = 100).

Classic pytest-benchmark timing of every approach in isolation -- the
numbers behind the paper's complexity discussion (OPDCA is O(n^3 N),
DM/DMR are cheap, OPT pays for completeness).
"""

import pytest

from repro.baselines.dcmp import dcmp
from repro.core.dca import DelayAnalyzer
from repro.core.opdca import opdca
from repro.core.schedulability import SDCA
from repro.pairwise.dm import dm
from repro.pairwise.dmr import dmr
from repro.pairwise.opt import opt


def test_segment_cache_construction(benchmark, default_case):
    benchmark(lambda: DelayAnalyzer(default_case.jobset))


def test_dm_analysis(benchmark, default_case):
    jobset = default_case.jobset
    analyzer = DelayAnalyzer(jobset)
    benchmark(lambda: dm(jobset, "eq10", analyzer=analyzer))


def test_dmr_repair(benchmark, default_case):
    jobset = default_case.jobset
    analyzer = DelayAnalyzer(jobset)
    benchmark(lambda: dmr(jobset, "eq10", analyzer=analyzer))


def test_opdca_assignment(benchmark, default_case):
    jobset = default_case.jobset
    analyzer = DelayAnalyzer(jobset)

    def run():
        return opdca(jobset, "eq10",
                     test=SDCA(jobset, "eq10", analyzer=analyzer))

    result = benchmark(run)
    assert result.feasible in (True, False)


@pytest.mark.parametrize("backend", ["highs", "cp"])
def test_opt_backends(benchmark, default_case, backend):
    jobset = default_case.jobset
    analyzer = DelayAnalyzer(jobset)
    result = benchmark(
        lambda: opt(jobset, "eq10", backend=backend, analyzer=analyzer))
    assert result.feasible in (True, False)


def test_dcmp_simulation(benchmark, default_case):
    benchmark(lambda: dcmp(default_case.jobset, release="budget"))
