"""The docs link-checker gate (scripts/check_links.py)."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / \
    "check_links.py"
_spec = importlib.util.spec_from_file_location("check_links", SCRIPT)
check_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_links)


def _md(tmp_path, name, text) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


class TestIterLinks:
    def test_finds_inline_links_with_lines(self):
        text = "intro\n[a](x.md) and [b](sub/y.md)\n![img](pic.png)\n"
        links = check_links.iter_links(text)
        assert links == [(2, "x.md"), (2, "sub/y.md"), (3, "pic.png")]

    def test_skips_fenced_code_blocks(self):
        text = "[real](a.md)\n```\n[fake](ghost.md)\n```\n[real2](b.md)\n"
        targets = [t for _, t in check_links.iter_links(text)]
        assert targets == ["a.md", "b.md"]

    def test_badge_image_inside_link(self):
        text = "[![CI](badge.svg)](../../actions/workflows/ci.yml)\n"
        targets = [t for _, t in check_links.iter_links(text)]
        assert targets == ["badge.svg", "../../actions/workflows/ci.yml"]


class TestCheckFile:
    def test_resolving_links_pass(self, tmp_path):
        _md(tmp_path, "docs/other.md", "content")
        page = _md(tmp_path, "docs/index.md",
                   "[ok](other.md) [up](../README.md) "
                   "[anchor](#section) [frag](other.md#part) "
                   "[web](https://example.org/x.md)")
        _md(tmp_path, "README.md", "root")
        assert check_links.check_file(page, tmp_path) == []

    def test_broken_link_reported_with_line(self, tmp_path):
        page = _md(tmp_path, "index.md", "fine\n\n[bad](missing.md)\n")
        failures = check_links.check_file(page, tmp_path)
        assert len(failures) == 1
        assert "index.md:3" in failures[0]
        assert "missing.md" in failures[0]

    def test_links_escaping_tree_are_skipped(self, tmp_path):
        page = _md(tmp_path, "index.md",
                   "[badge](../../actions/workflows/ci.yml)")
        assert check_links.check_file(page, tmp_path) == []


class TestMain:
    def test_directory_pass_and_fail(self, tmp_path, capsys):
        _md(tmp_path, "a.md", "[b](b.md)")
        _md(tmp_path, "b.md", "no links")
        assert check_links.main([str(tmp_path)]) == 0
        assert "link check passed" in capsys.readouterr().out

        _md(tmp_path, "a.md", "[gone](ghost.md)")
        assert check_links.main([str(tmp_path)]) == 1
        assert "broken link" in capsys.readouterr().err

    def test_missing_argument_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            check_links.main([str(tmp_path / "nope.md")])

    def test_repo_docs_are_clean(self):
        # The default invocation CI runs: README.md + docs/*.md.
        assert check_links.main([]) == 0
