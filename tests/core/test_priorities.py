"""Tests for PriorityOrdering and PairwiseAssignment."""

import numpy as np
import pytest

from repro.core.exceptions import ModelError
from repro.core.priorities import PairwiseAssignment, PriorityOrdering
from tests.conftest import FIG2_PAIRS


class TestPriorityOrdering:
    def test_from_priorities(self):
        ordering = PriorityOrdering([2, 1, 3])
        assert ordering.order() == [1, 0, 2]
        assert ordering.rank(1) == 1

    def test_from_order(self):
        ordering = PriorityOrdering.from_order([2, 0, 1])
        assert ordering.priority.tolist() == [2, 3, 1]

    def test_rejects_non_permutation(self):
        with pytest.raises(ModelError, match="permutation"):
            PriorityOrdering([1, 1, 3])
        with pytest.raises(ModelError, match="permutation"):
            PriorityOrdering([0, 1, 2])

    def test_is_higher(self):
        ordering = PriorityOrdering([2, 1, 3])
        assert ordering.is_higher(1, 0)
        assert not ordering.is_higher(2, 0)

    def test_masks(self):
        ordering = PriorityOrdering([2, 1, 3])
        assert ordering.higher_mask(0).tolist() == [False, True, False]
        assert ordering.lower_mask(0).tolist() == [False, False, True]

    def test_matrix_antisymmetric(self):
        ordering = PriorityOrdering([2, 1, 3])
        matrix = ordering.as_matrix()
        assert not matrix.diagonal().any()
        assert (matrix ^ matrix.T ^ np.eye(3, dtype=bool)).all()

    def test_round_trip_with_order(self):
        for order in ([0, 1, 2], [2, 1, 0], [1, 2, 0]):
            assert PriorityOrdering.from_order(order).order() == order

    def test_equality_and_hash(self):
        assert PriorityOrdering([1, 2]) == PriorityOrdering([1, 2])
        assert PriorityOrdering([1, 2]) != PriorityOrdering([2, 1])
        assert hash(PriorityOrdering([1, 2])) == \
            hash(PriorityOrdering([1, 2]))


class TestPairwiseAssignment:
    def test_from_pairs_figure2(self, fig2_jobset):
        assignment = PairwiseAssignment.from_pairs(fig2_jobset,
                                                   FIG2_PAIRS)
        assert assignment.is_higher(2, 0)
        assert not assignment.is_higher(0, 2)
        assert assignment.in_conflict(0, 1)
        # J1 and J4 never share a resource.
        assert not assignment.in_conflict(0, 3)
        assert not assignment.is_higher(0, 3)

    def test_figure2_is_cyclic(self, fig2_jobset):
        assignment = PairwiseAssignment.from_pairs(fig2_jobset,
                                                   FIG2_PAIRS)
        cycle = assignment.find_cycle()
        assert cycle is not None
        assert not assignment.is_acyclic()
        nodes = {a for a, _ in cycle}
        assert nodes == {0, 1, 2, 3}

    def test_cyclic_assignment_has_no_total_order(self, fig2_jobset):
        assignment = PairwiseAssignment.from_pairs(fig2_jobset,
                                                   FIG2_PAIRS)
        with pytest.raises(ModelError, match="cyclic"):
            assignment.to_total_order()

    def test_missing_orientation_rejected(self, fig2_jobset):
        with pytest.raises(ModelError, match="unoriented"):
            PairwiseAssignment.from_pairs(fig2_jobset, FIG2_PAIRS[:-1])

    def test_double_orientation_rejected(self, fig2_jobset):
        n = fig2_jobset.num_jobs
        x = np.zeros((n, n), dtype=bool)
        for winner, loser in FIG2_PAIRS:
            x[winner, loser] = True
        x[0, 2] = True  # both directions of (0, 2)
        with pytest.raises(ModelError, match="both directions"):
            PairwiseAssignment(fig2_jobset, x)

    def test_flipped(self, fig2_jobset):
        assignment = PairwiseAssignment.from_pairs(fig2_jobset,
                                                   FIG2_PAIRS)
        flipped = assignment.flipped(0, 2)
        assert flipped.is_higher(0, 2)
        assert not flipped.is_higher(2, 0)
        # Original is untouched.
        assert assignment.is_higher(2, 0)

    def test_flip_requires_conflict(self, fig2_jobset):
        assignment = PairwiseAssignment.from_pairs(fig2_jobset,
                                                   FIG2_PAIRS)
        with pytest.raises(ModelError, match="share no resource"):
            assignment.flipped(0, 3)

    def test_ordering_projection_acyclic(self, fig2_jobset):
        ordering = PriorityOrdering([1, 2, 3, 4])
        assignment = ordering.to_pairwise(fig2_jobset)
        assert assignment.is_acyclic()
        assert assignment.agrees_with(ordering)
        recovered = assignment.to_total_order()
        # The projection constrains only conflicting pairs, but the
        # recovered order must agree with it.
        assert assignment.agrees_with(recovered)

    def test_higher_and_lower_masks(self, fig2_jobset):
        assignment = PairwiseAssignment.from_pairs(fig2_jobset,
                                                   FIG2_PAIRS)
        assert assignment.higher_mask(0).tolist() == \
            [False, False, True, False]
        assert assignment.lower_mask(0).tolist() == \
            [False, True, False, False]

    def test_copeland_scores(self, fig2_jobset):
        assignment = PairwiseAssignment.from_pairs(fig2_jobset,
                                                   FIG2_PAIRS)
        scores = assignment.copeland_scores()
        # Perfect cycle: everyone wins exactly once.
        assert scores == {0: 1, 1: 1, 2: 1, 3: 1}
        subset = assignment.copeland_scores([0, 1])
        assert subset == {0: 1, 1: 0}

    def test_matrix_copy_isolated(self, fig2_jobset):
        assignment = PairwiseAssignment.from_pairs(fig2_jobset,
                                                   FIG2_PAIRS)
        matrix = assignment.matrix()
        matrix[:] = False
        assert assignment.is_higher(2, 0)

    def test_repr_mentions_cyclicity(self, fig2_jobset):
        assignment = PairwiseAssignment.from_pairs(fig2_jobset,
                                                   FIG2_PAIRS)
        assert "acyclic=False" in repr(assignment)
