"""The public API surface: everything advertised in __all__ imports and
the README quickstart works."""

import importlib

import pytest


def test_top_level_all_importable():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


@pytest.mark.parametrize("module", [
    "repro.core", "repro.pairwise", "repro.solver", "repro.sim",
    "repro.workload", "repro.baselines", "repro.experiments",
    "repro.online", "repro.store", "repro.campaign", "repro.serve",
])
def test_subpackage_all_importable(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name} missing"


def test_version():
    import repro

    assert repro.__version__


def test_readme_quickstart():
    """The exact snippet from the package docstring/README."""
    from repro import JobSet, opdca

    jobset = JobSet.single_resource(
        processing=[(5, 7, 15), (7, 9, 17), (6, 8, 30), (2, 4, 3)],
        deadlines=[60, 55, 55, 50],
    )
    result = opdca(jobset)
    assert result.feasible in (True, False)


def test_full_pipeline_quickstart(fig2_jobset):
    """Model -> analysis -> OPDCA -> OPT -> simulation round trip."""
    from repro import opdca
    from repro.pairwise import opt
    from repro.sim import PairwisePolicy, simulate

    assert not opdca(fig2_jobset, "eq6").feasible
    result = opt(fig2_jobset, "eq6")
    assert result.feasible
    sim = simulate(fig2_jobset, PairwisePolicy(result.assignment))
    sim.validate()
    assert sim.delays.shape == (4,)


def test_routes_reexports_import_and_bind():
    """The route model re-exported at top level binds end to end:
    describe jobs declaratively, pad into a strict pipeline, analyse."""
    from repro import (
        DelayAnalyzer,
        MSMRSystem,
        RouteBinding,
        RouteJob,
        Stage,
        route_jobset,
    )

    system = MSMRSystem([Stage(2), Stage(2), Stage(1)])
    jobs = [
        RouteJob(stages=(0, 1, 2), processing=(2.0, 3.0, 1.0),
                 resources=(0, 1, 0), deadline=30.0),
        RouteJob(stages=(0, 2), processing=(4.0, 2.0),
                 resources=(1, 0), deadline=25.0, name="skips-mid"),
    ]
    binding = route_jobset(system, jobs)
    assert isinstance(binding, RouteBinding)
    assert binding.jobset.num_jobs == 2
    delays = DelayAnalyzer(binding.jobset).delays_for_ordering([1, 2])
    assert delays.shape == (2,)
    assert (delays > 0).all()
