"""Tests for per-resource order extraction and the OPT warm start."""

import numpy as np
import pytest

from repro.core.exceptions import ModelError
from repro.core.priorities import PairwiseAssignment, PriorityOrdering
from repro.pairwise.opt import opt
from tests.conftest import FIG2_PAIRS


@pytest.fixture
def fig2_assignment(fig2_jobset):
    return PairwiseAssignment.from_pairs(fig2_jobset, FIG2_PAIRS)


class TestResourceOrder:
    def test_figure2_per_resource_orders(self, fig2_jobset,
                                         fig2_assignment):
        """Figure 2(b) read off per resource: S1/A J3>J1, S1/B J2>J4,
        S2-S3/A J4>J3, S2-S3/B J1>J2."""
        orders = fig2_assignment.per_resource_orders()
        assert orders[(0, 0)] == [2, 0]
        assert orders[(0, 1)] == [1, 3]
        assert orders[(1, 0)] == [3, 2]
        assert orders[(1, 1)] == [0, 1]
        assert orders[(2, 0)] == [3, 2]
        assert orders[(2, 1)] == [0, 1]

    def test_global_cycle_is_fine_per_resource(self, fig2_assignment):
        """The Figure 2(b) assignment is cyclic overall yet every
        single resource has a clean order -- exactly the paper's
        point about pairwise flexibility."""
        assert not fig2_assignment.is_acyclic()
        fig2_assignment.per_resource_orders()  # must not raise

    def test_single_job_resource(self, fig2_jobset, fig2_assignment):
        from repro.core.job import Job
        from repro.core.system import JobSet, MSMRSystem, Stage

        system = MSMRSystem([Stage(2)])
        jobs = [Job(processing=(1,), deadline=10, resources=(0,)),
                Job(processing=(1,), deadline=10, resources=(1,))]
        jobset = JobSet(system, jobs)
        assignment = PairwiseAssignment(jobset,
                                        np.zeros((2, 2), dtype=bool))
        assert assignment.resource_order(0, 0) == [0]
        assert assignment.resource_order(0, 1) == [1]

    def test_from_total_ordering_matches_ranks(self, fig2_jobset):
        ordering = PriorityOrdering([2, 3, 1, 4])
        assignment = ordering.to_pairwise(fig2_jobset)
        orders = assignment.per_resource_orders()
        for (stage, _resource), members in orders.items():
            ranks = [ordering.rank(i) for i in members]
            assert ranks == sorted(ranks)

    def test_intra_resource_cycle_detected(self):
        from repro.core.job import Job
        from repro.core.system import JobSet, MSMRSystem, Stage

        system = MSMRSystem([Stage(1)])
        jobs = [Job(processing=(1,), deadline=10, resources=(0,))
                for _ in range(3)]
        jobset = JobSet(system, jobs)
        x = np.zeros((3, 3), dtype=bool)
        x[0, 1] = x[1, 2] = x[2, 0] = True  # rock-paper-scissors
        assignment = PairwiseAssignment(jobset, x)
        with pytest.raises(ModelError, match="cyclic within"):
            assignment.resource_order(0, 0)


class TestWarmStart:
    def test_warm_start_short_circuits_on_dmr_success(self,
                                                      small_edge_jobset):
        from repro.pairwise.dmr import dmr

        heuristic = dmr(small_edge_jobset, "eq10")
        result = opt(small_edge_jobset, "eq10", warm_start=True)
        if heuristic.feasible:
            assert result.solver == "opt/warm-dmr"
            assert result.stats.get("warm_start")
        else:
            assert result.solver.startswith("opt/")

    def test_warm_start_falls_back_to_complete_search(self,
                                                      fig2_jobset):
        """DMR fails on the Figure 2 instance; warm start must still
        find the (cyclic) feasible assignment via the backend."""
        result = opt(fig2_jobset, "eq6", warm_start=True)
        assert result.feasible
        assert result.solver == "opt/highs"

    def test_same_verdict_with_and_without(self, small_edge_jobset):
        plain = opt(small_edge_jobset, "eq10")
        warm = opt(small_edge_jobset, "eq10", warm_start=True)
        assert plain.feasible == warm.feasible
