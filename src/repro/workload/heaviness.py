"""Heaviness metrics (Section VI.A of the paper).

The paper characterises workload intensity through *heaviness*:

* ``h_{i,j} = P_{i,j} / D_i`` -- heaviness of job ``J_i`` at stage
  ``S_j``;
* a job is *heavy* at ``S_j`` when ``h_{i,j} >= beta``;
* ``chi_{y,j}`` -- total heaviness of the jobs mapped to the ``y``-th
  resource of ``S_j``;
* ``H = max_{y,j} chi_{y,j}`` -- heaviness of the job set, bounded by
  the generator parameter ``gamma``;
* *rejected heaviness* (Figure 4d) -- share of total job heaviness
  carried by the jobs an admission controller rejects.
"""

from __future__ import annotations

import numpy as np

from repro.core.system import JobSet


def heaviness_matrix(jobset: JobSet) -> np.ndarray:
    """``h[i, j] = P_{i,j} / D_i``."""
    return jobset.P / jobset.D[:, None]


def job_heaviness(jobset: JobSet) -> np.ndarray:
    """Total heaviness of each job (summed over stages)."""
    return heaviness_matrix(jobset).sum(axis=1)


def heavy_mask(jobset: JobSet, beta: float) -> np.ndarray:
    """``(n, N)`` mask of (job, stage) pairs with ``h_{i,j} >= beta``."""
    return heaviness_matrix(jobset) >= beta


def resource_heaviness(jobset: JobSet) -> dict[tuple[int, int], float]:
    """``chi_{y,j}`` for every (stage, resource index) pair."""
    h = heaviness_matrix(jobset)
    chi: dict[tuple[int, int], float] = {}
    for stage in range(jobset.num_stages):
        for resource in range(jobset.system.stages[stage].num_resources):
            members = jobset.R[:, stage] == resource
            chi[(stage, resource)] = float(h[members, stage].sum())
    return chi


def system_heaviness(jobset: JobSet) -> float:
    """``H = max_{y,j} chi_{y,j}`` (resembles total utilisation)."""
    return max(resource_heaviness(jobset).values())


def rejected_heaviness(jobset: JobSet, rejected: "list[int]") -> float:
    """Percentage of total heaviness carried by the rejected jobs."""
    weights = job_heaviness(jobset)
    total = float(weights.sum())
    if total == 0:
        return 0.0
    return 100.0 * float(weights[rejected].sum()) / total
