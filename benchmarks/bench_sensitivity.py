"""Sensitivity sweeps S1-S3: the paper's closing conjecture.

Section VII conjectures the pairwise-vs-ordering gap "is likely to grow
with the number of stages, resources, and jobs".  The three sweeps vary
one axis each and record the acceptance gaps; the stage sweep uses the
generic N-stage pipeline generator because the edge workload is pinned
at N = 3.
"""

from benchmarks.conftest import QUICK_CASES
from repro.experiments.config import full_scale
from repro.experiments.sensitivity import (
    gap_vs_jobs,
    gap_vs_resources,
    gap_vs_stages,
    summarize_gaps,
)


def _record(benchmark, result) -> None:
    for row in result.rows:
        benchmark.extra_info[str(row["point"])] = {
            key: round(value, 1) if isinstance(value, float) else value
            for key, value in row.items() if key != "point"}
    print()
    print(result.format())


def test_gap_vs_jobs(benchmark):
    cases = 30 if full_scale() else QUICK_CASES
    result = benchmark.pedantic(lambda: gap_vs_jobs(cases=cases),
                                rounds=1, iterations=1)
    _record(benchmark, result)
    # More jobs on fixed pools can only increase interference: the
    # naive DM baseline must not improve along the sweep.
    dm = [row["AR(dm)"] for row in result.rows]
    assert all(b <= a + 1e-9 for a, b in zip(dm, dm[1:]))


def test_gap_vs_resources(benchmark):
    cases = 30 if full_scale() else QUICK_CASES
    result = benchmark.pedantic(lambda: gap_vs_resources(cases=cases),
                                rounds=1, iterations=1)
    _record(benchmark, result)
    # The guaranteed per-point relations must hold at every pool size
    # (absolute ARs along the sweep are sampling-noisy in quick mode).
    for row in result.rows:
        assert row["AR(dm)"] <= row["AR(dmr)"] + 1e-9
        assert row["AR(dmr)"] <= row["AR(opt)"] + 1e-9
        assert row["AR(opdca)"] <= row["AR(opt)"] + 1e-9


def test_gap_vs_stages(benchmark):
    cases = 30 if full_scale() else QUICK_CASES
    result = benchmark.pedantic(lambda: gap_vs_stages(cases=cases),
                                rounds=1, iterations=1)
    _record(benchmark, result)
    print()
    print(summarize_gaps([result]))
    # The calibrated sweep shows the conjectured pairwise advantage
    # somewhere before total saturation.
    gaps = [row["gap(OPT-OPDCA)"] for row in result.rows]
    assert max(gaps) >= 0.0
