"""Holistic scheduling in an edge-computing system (paper Section VI).

Generates one paper-scale test case -- 100 deadline-constrained jobs
offloading through 25 access points to 20 edge servers -- and walks the
full toolchain over it:

* workload diagnostics (heaviness, conflict density),
* all five approaches of Figure 4 (DM, DMR, OPDCA, OPT, DCMP),
* bound-vs-simulation comparison for the computed assignment,
* a Gantt strip of the busiest server.

Run:  python examples/edge_offloading.py [seed]
"""

import sys

from repro import DelayAnalyzer, opdca
from repro.experiments.runner import evaluate_case
from repro.pairwise import ConflictGraph, opt
from repro.sim import PairwisePolicy, TotalOrderPolicy, simulate
from repro.workload import (
    EdgeWorkloadConfig,
    generate_edge_case,
    resource_heaviness,
    system_heaviness,
)


def main(seed: int = 0) -> None:
    config = EdgeWorkloadConfig()
    case = generate_edge_case(config, seed=seed)
    jobset = case.jobset

    print(f"=== Edge workload (seed {seed}) ===")
    print(f"  jobs: {jobset.num_jobs}   APs: {config.num_aps}   "
          f"servers: {config.num_servers}")
    print(f"  system heaviness H = {system_heaviness(jobset):.3f} "
          f"(gamma = {config.gamma})")
    graph = ConflictGraph(jobset)
    print(f"  conflict pairs: {graph.num_pairs} "
          f"(density {graph.density():.2f})")
    chi = resource_heaviness(jobset)
    busiest = max(chi, key=chi.get)
    print(f"  busiest resource: stage {busiest[0]}, "
          f"index {busiest[1]} (chi = {chi[busiest]:.3f})")

    print("\n=== Figure-4 approaches on this case (Eq. 10) ===")
    outcome = evaluate_case(case)
    for approach in ("dm", "dmr", "opdca", "opt", "dcmp"):
        verdict = "accept" if outcome.accepted[approach] else "reject"
        print(f"  {approach.upper():>6}: {verdict:>7}  "
              f"({outcome.runtime[approach] * 1e3:7.1f} ms)")

    print("\n=== Bound vs simulation ===")
    analyzer = DelayAnalyzer(jobset)
    ordering_result = opdca(jobset, "eq10")
    if ordering_result.feasible:
        policy = TotalOrderPolicy(ordering_result.ordering)
        bounds = ordering_result.delays
        label = "OPDCA ordering"
    else:
        pairwise = opt(jobset, "eq10", analyzer=analyzer)
        if not pairwise.feasible:
            print("  case is analytically infeasible; simulating the "
                  "deadline-monotonic assignment instead")
            from repro.pairwise import dm
            fallback = dm(jobset, "eq10", analyzer=analyzer)
            policy = PairwisePolicy(fallback.assignment)
            bounds = fallback.delays
            label = "DM assignment (infeasible case)"
        else:
            policy = PairwisePolicy(pairwise.assignment)
            bounds = pairwise.delays
            label = "OPT pairwise assignment"
    sim = simulate(jobset, policy)
    sim.validate()
    ratio = sim.delays / bounds
    print(f"  assignment: {label}")
    print(f"  simulated deadline misses: {int(sim.misses.sum())}")
    print(f"  mean sim/bound ratio: {ratio.mean():.2f}  "
          f"(max {ratio.max():.2f})")

    print("\n=== Busiest server, first jobs (Gantt) ===")
    stage, index = busiest
    strip = sim.trace.gantt(stage=stage, resource=index,
                            label=jobset.label)
    print("\n".join(strip.splitlines()[:12]))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
