"""Reduction from route jobs to a strict-pipeline :class:`JobSet`.

Every skipped stage becomes a zero-time visit to a fresh dummy resource
appended after the stage's real pool.  Dummies are never shared, so

* ``shares[i, k, j]`` stays false at any stage either job skips, hence
  ``ep``/``et``/segment profiles -- and with them every DCA bound --
  are exactly those of the route semantics;
* the simulator dispatches the zero-length visit immediately (no other
  job ever queues on that dummy), so simulated delays are unchanged.

The zero-time visit is *not* free of modelling consequences in one
corner: the job still traverses stages in order, so a route job cannot
overtake itself -- which is also true in the acyclic systems of [7].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.exceptions import ModelError
from repro.core.job import Job
from repro.core.system import JobSet, MSMRSystem, Stage
from repro.routes.model import RouteJob


@dataclass
class RouteBinding:
    """A padded job set plus the bookkeeping to read results back.

    Attributes
    ----------
    jobset:
        The padded strict-pipeline job set; feed it to any analyzer,
        solver or simulator in the library.
    route_jobs:
        The original route jobs, in job-index order.
    system:
        The original (unpadded) system.
    dummy_base:
        Per stage, the index of the first dummy resource (== the real
        pool size of that stage).
    """

    jobset: JobSet
    route_jobs: tuple[RouteJob, ...]
    system: MSMRSystem
    dummy_base: tuple[int, ...]

    def is_dummy(self, stage: int, resource: int) -> bool:
        """Whether ``resource`` at ``stage`` is a padding dummy."""
        return resource >= self.dummy_base[stage]

    def real_trace(self, trace):
        """Filter a simulator trace down to real-resource intervals.

        Zero-length dummy visits are dropped; everything else is
        returned unchanged (lazily, as a list).
        """
        return [interval for interval in trace.intervals
                if not self.is_dummy(interval.stage, interval.resource)]

    def visited_mask(self) -> np.ndarray:
        """``(n, N)`` bool: which job visits which stage."""
        n = len(self.route_jobs)
        num_stages = self.system.num_stages
        mask = np.zeros((n, num_stages), dtype=bool)
        for i, job in enumerate(self.route_jobs):
            mask[i, list(job.stages)] = True
        return mask


def route_jobset(system: MSMRSystem,
                 jobs: Sequence[RouteJob]) -> RouteBinding:
    """Bind route jobs to ``system`` via dummy-resource padding.

    Raises :class:`~repro.core.exceptions.ModelError` when a route
    references a stage or resource outside the system.
    """
    jobs = tuple(jobs)
    if not jobs:
        raise ModelError("need at least one route job")
    num_stages = system.num_stages
    for idx, job in enumerate(jobs):
        if job.stages[-1] >= num_stages:
            raise ModelError(
                f"job {job.label(idx)} visits stage {job.stages[-1]}, "
                f"system has {num_stages}")
        for stage, resource in zip(job.stages, job.resources):
            pool = system.stages[stage].num_resources
            if resource >= pool:
                raise ModelError(
                    f"job {job.label(idx)} uses resource {resource} at "
                    f"stage {stage}, but the stage only has {pool}")

    # One dummy per (job, skipped stage): dummies must never be shared,
    # or a phantom zero-length segment could merge two real segments.
    skip_counts = [0] * num_stages
    dummy_index: dict[tuple[int, int], int] = {}
    for i, job in enumerate(jobs):
        for stage in range(num_stages):
            if not job.visits(stage):
                base = system.stages[stage].num_resources
                dummy_index[(i, stage)] = base + skip_counts[stage]
                skip_counts[stage] += 1

    padded_stages = [
        Stage(num_resources=stage.num_resources + skip_counts[j],
              preemptive=stage.preemptive, name=stage.name)
        for j, stage in enumerate(system.stages)
    ]
    padded_system = MSMRSystem(padded_stages)

    padded_jobs = []
    for i, job in enumerate(jobs):
        processing = [0.0] * num_stages
        resources = [0] * num_stages
        for stage, time, resource in zip(job.stages, job.processing,
                                         job.resources):
            processing[stage] = time
            resources[stage] = resource
        for stage in range(num_stages):
            if not job.visits(stage):
                resources[stage] = dummy_index[(i, stage)]
        padded_jobs.append(Job(
            processing=tuple(processing), deadline=job.deadline,
            resources=tuple(resources), arrival=job.arrival,
            name=job.name))

    return RouteBinding(jobset=JobSet(padded_system, padded_jobs),
                        route_jobs=jobs, system=system,
                        dummy_base=tuple(
                            stage.num_resources for stage in system.stages))
