"""Audsley's Optimal Priority Assignment (OPA) engine.

Generic implementation of the priority-assignment loop of Section III.B:
priorities ``n`` (lowest) down to ``1`` (highest) are assigned one at a
time; the current priority goes to any yet-unassigned job that passes
the schedulability test assuming all other unassigned jobs have higher
priority.  With an OPA-compatible test this is optimal: it finds a
feasible total ordering whenever one exists.

The engine is test-agnostic -- it only needs a feasibility callback --
so it backs both OPDCA (Algorithm 1) and the admission-controller
variant used in Figure 4(d).

Two engines are provided:

* :func:`audsley` -- the stock loop: per level, either a serial
  first-feasible candidate scan or one full batch evaluation
  (``batch_test``).
* :func:`audsley_frontier` -- the lazy loop behind the default OPDCA
  batch path.  For OPA-compatible tests, Audsley's third
  compatibility condition is a *monotonicity* guarantee along the
  assignment trajectory: moving a job from a candidate's higher- to
  its lower-priority set (or discarding it) can never increase the
  candidate's bound, so a candidate once verified feasible stays
  feasible.  Each level then only evaluates the unassigned candidates
  *below* the carried feasible frontier (exactly the ones the stock
  scan would have to reject before placing), and the frontier
  placement itself is free for the float-monotone bounds
  (:data:`~repro.core.dca.FLOAT_MONOTONE_EQUATIONS`) or one fused
  probe for ``eq10``.  Decisions are identical to the stock batch
  loop -- the laziness only decides how much work is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

#: Feasibility callback: ``test(i, higher_mask, lower_mask) -> bool``.
#: The masks are read-only views of engine state -- copy before storing.
FeasibilityTest = Callable[[int, np.ndarray, np.ndarray], bool]

#: Batched feasibility callback: ``batch_test(unassigned, lower)`` with
#: the *full* unassigned mask (no self-exclusion) returns a boolean
#: vector marking which candidates pass at the current level.
BatchFeasibilityTest = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class OPAResult:
    """Outcome of an Audsley priority-assignment run.

    Attributes
    ----------
    feasible:
        True iff every job received a priority.
    priority:
        ``(n,)`` int array; ``priority[i]`` is the priority value of
        ``J_i`` (1 = highest).  Entries of unassigned jobs are 0 when
        the run failed.
    order:
        Job indices from highest priority to lowest (only the assigned
        jobs when the run failed, in assignment order reversed).
    failed_level:
        Priority level at which no job was feasible (None on success).
    unassigned:
        Jobs still without a priority when the run stopped.
    """

    feasible: bool
    priority: np.ndarray
    order: list[int] = field(default_factory=list)
    failed_level: int | None = None
    unassigned: list[int] = field(default_factory=list)


def audsley(num_jobs: int, test: FeasibilityTest, *,
            candidates: Sequence[int] | None = None,
            batch_test: BatchFeasibilityTest | None = None) -> OPAResult:
    """Run Audsley's OPA over ``num_jobs`` jobs with the given test.

    Parameters
    ----------
    num_jobs:
        Total number of jobs (masks passed to ``test`` have this size).
    test:
        OPA-compatible feasibility test.  For priority level ``p`` the
        engine calls ``test(i, H_i, L_i)`` with ``H_i`` = all unassigned
        jobs except ``J_i`` and ``L_i`` = the jobs already assigned
        (strictly lower) priorities.  The masks are **read-only views**
        of the engine's scratch state (no per-candidate copies are
        made); callbacks that want to keep a mask must copy it.
    candidates:
        Optional subset of job indices to assign priorities to (used by
        the admission controller); defaults to all jobs.  Jobs outside
        the subset never appear in any mask.
    batch_test:
        Optional vectorised variant: called once per priority level
        with ``(unassigned, assigned_lower)`` and returning a boolean
        feasibility vector over all jobs; the engine places the
        lowest-indexed feasible candidate, exactly as the serial scan
        would.  When supplied it replaces the O(n) per-level ``test``
        calls (used by OPDCA via ``SDCA.audsley_batch``).

    Returns
    -------
    OPAResult
        Priorities are ``1..len(candidates)`` within the candidate set.
    """
    if candidates is None:
        candidates = list(range(num_jobs))
    else:
        candidates = list(candidates)
    unassigned = np.zeros(num_jobs, dtype=bool)
    unassigned[candidates] = True
    assigned_lower = np.zeros(num_jobs, dtype=bool)
    priority = np.zeros(num_jobs, dtype=np.int64)
    order_low_to_high: list[int] = []

    # The candidate loop reuses these read-only views instead of
    # allocating fresh copies per feasibility call: ``J_i`` is removed
    # from (and restored to) the scratch ``unassigned`` buffer around
    # each call, which the ``higher`` view reflects for free.
    higher_view = unassigned.view()
    higher_view.setflags(write=False)
    lower_view = assigned_lower.view()
    lower_view.setflags(write=False)

    for level in range(len(candidates), 0, -1):
        placed = None
        if batch_test is not None:
            feasible = np.asarray(batch_test(higher_view, lower_view))
            choices = np.flatnonzero(unassigned & feasible)
            if choices.size:
                placed = int(choices[0])
        else:
            for i in np.flatnonzero(unassigned):
                i = int(i)
                unassigned[i] = False
                feasible_i = test(i, higher_view, lower_view)
                unassigned[i] = True
                if feasible_i:
                    placed = i
                    break
        if placed is None:
            return OPAResult(
                feasible=False,
                priority=priority,
                order=list(reversed(order_low_to_high)),
                failed_level=level,
                unassigned=[int(j) for j in np.flatnonzero(unassigned)],
            )
        priority[placed] = level
        unassigned[placed] = False
        assigned_lower[placed] = True
        order_low_to_high.append(placed)

    return OPAResult(
        feasible=True,
        priority=priority,
        order=list(reversed(order_low_to_high)),
    )


def audsley_frontier(num_jobs: int, kernel, *,
                     candidates: Sequence[int] | None = None) -> OPAResult:
    """Frontier-carrying Audsley loop (the default OPDCA batch path).

    ``kernel`` is a level-evaluation adapter, typically
    :meth:`repro.core.schedulability.SDCA.level_kernel`: it must expose
    ``delays_rows(rows, unassigned, assigned_lower)``, ``probe(i,
    unassigned, assigned_lower)``, the flags ``monotone`` /
    ``float_monotone`` and the per-job threshold vector
    ``deadline_tol`` (see
    :class:`~repro.core.schedulability.AudsleyLevelKernel`).

    The returned :class:`OPAResult` -- feasibility, priorities,
    assignment order and failure diagnostics -- is identical to
    running :func:`audsley` with the corresponding ``batch_test``:

    * a level with no carried feasible candidate evaluates in full,
      places the lowest-indexed feasible candidate (exactly the stock
      rule) and seeds the frontier with the other feasible ones;
    * a level with a carried frontier evaluates only the unassigned
      candidates with smaller indices -- stock Audsley would have to
      scan (and reject) precisely those before reaching the frontier
      -- minus the ones whose carried excess lower bounds
      (``kernel.removal_caps()``) prove them still infeasible, and
      otherwise places the frontier candidate itself:
      unconditionally for float-monotone tests (zeroing masked
      operands under numpy's fixed-length pairwise reductions can
      never increase a value, ulp for ulp), after one fused probe for
      ``eq10`` (monotone in exact arithmetic only), with a full
      re-evaluation as the ulp-level fallback;
    * once every remaining candidate of a level is verified feasible
      under a float-monotone test, the rest of the trajectory is fully
      determined (stock always places the lowest-indexed feasible
      candidate) and is emitted with no further evaluation;
    * non-OPA-compatible tests (``eq2``/``eq4``) evaluate every level
      in full -- bit-for-bit the stock loop.

    Since an OPA-compatible test keeps every feasible candidate
    feasible, a failing level is necessarily one with an empty
    frontier, which is always evaluated in full -- so failure
    diagnostics (``failed_level``, ``unassigned``) match the stock
    loop exactly.
    """
    if candidates is None:
        candidates = list(range(num_jobs))
    else:
        candidates = list(candidates)
    unassigned = np.zeros(num_jobs, dtype=bool)
    unassigned[candidates] = True
    assigned_lower = np.zeros(num_jobs, dtype=bool)
    priority = np.zeros(num_jobs, dtype=np.int64)
    order_low_to_high: list[int] = []
    deadline_tol = kernel.deadline_tol
    monotone = bool(kernel.monotone)
    float_monotone = bool(kernel.float_monotone)
    #: Candidates verified feasible under an earlier (more pessimistic)
    #: context of this run; monotonicity keeps them feasible.
    feasible: set[int] = set()

    # Sound per-candidate lower bounds on the *current* delay bound
    # (monotone tests only): placing job ``p`` can lower a candidate's
    # bound by at most ``caps[:, p]``, so an evaluated bound stays a
    # valid lower bound across placements once each cap -- padded by a
    # safety margin orders of magnitude above the ~1e-11 relative
    # float error of the kernels -- is subtracted.  Candidates whose
    # lower bound still exceeds their deadline are *provably*
    # infeasible and skipped without evaluation; anything inside the
    # safety band is evaluated exactly, so decisions never depend on
    # the bound, only the amount of skipped work does.  (Ported from
    # the excess lower bounds of ``repro.online.incremental``.)
    caps = kernel.removal_caps() if hasattr(kernel, "removal_caps") \
        else None
    lower_bound: "np.ndarray | None" = None
    _SAFETY = 1e-7

    def remember(rows: np.ndarray, delays: np.ndarray) -> None:
        nonlocal lower_bound
        if caps is None:
            return
        if lower_bound is None:
            lower_bound = np.full(num_jobs, -np.inf)
        lower_bound[rows] = delays - (_SAFETY + 1e-9 * np.abs(delays))

    def forget(removed: int) -> None:
        nonlocal lower_bound
        if lower_bound is not None:
            lower_bound -= caps[:, removed] + 1e-9

    level = len(candidates)
    while level > 0:
        cands = np.flatnonzero(unassigned)
        frontier = min(feasible) if feasible else None
        placed = None
        full_eval = False
        if monotone and frontier is not None:
            below = cands[:np.searchsorted(cands, frontier)]
            if below.size + 1 < cands.size:
                if below.size and lower_bound is not None:
                    below = below[lower_bound[below] <= deadline_tol[below]]
                if below.size:
                    delays = np.asarray(kernel.delays_rows(
                        below, unassigned, assigned_lower))
                    remember(below, delays)
                    with np.errstate(invalid="ignore"):
                        passing = below[delays <= deadline_tol[below]]
                    if passing.size:
                        placed = int(passing[0])
                        # The other passing sub-frontier candidates are
                        # verified *now*; remembering them tightens the
                        # frontier for the levels that follow.
                        feasible.update(int(p) for p in passing[1:])
                if placed is None:
                    if float_monotone or kernel.probe(
                            frontier, unassigned,
                            assigned_lower) <= deadline_tol[frontier]:
                        placed = frontier
                    else:
                        # Ulp-level fallback: eq10's carried candidate
                        # sits within one ulp of its deadline; decide
                        # the level from a full stock evaluation.
                        full_eval = True
            else:
                # The frontier sits at (or next to) the bottom of the
                # level; a full evaluation is no more expensive.
                full_eval = True
        else:
            full_eval = True

        if full_eval:
            delays = np.asarray(kernel.delays_rows(
                cands, unassigned, assigned_lower))
            remember(cands, delays)
            with np.errstate(invalid="ignore"):
                passing_mask = delays <= deadline_tol[cands]
            if float_monotone and bool(passing_mask.all()):
                # Every candidate is feasible and float-exact
                # monotonicity keeps each of them feasible at every
                # later level, where stock Audsley always places the
                # lowest-indexed unassigned candidate: the remaining
                # trajectory is fully determined -- emit it in one
                # step, no further evaluation.
                for candidate in cands:
                    candidate = int(candidate)
                    priority[candidate] = level
                    level -= 1
                    order_low_to_high.append(candidate)
                unassigned[cands] = False
                break
            feasible = {int(c) for c in cands[passing_mask]}
            if feasible:
                placed = min(feasible)

        if placed is None:
            return OPAResult(
                feasible=False,
                priority=priority,
                order=list(reversed(order_low_to_high)),
                failed_level=level,
                unassigned=[int(j) for j in np.flatnonzero(unassigned)],
            )
        feasible.discard(placed)
        priority[placed] = level
        unassigned[placed] = False
        assigned_lower[placed] = True
        order_low_to_high.append(placed)
        forget(placed)
        level -= 1

    return OPAResult(
        feasible=True,
        priority=priority,
        order=list(reversed(order_low_to_high)),
    )
