"""Tests for the OPT ILP model construction (Eqs. 7-9)."""

import numpy as np
import pytest

from repro.core.dca import DelayAnalyzer
from repro.core.priorities import PairwiseAssignment
from repro.pairwise.dm import dm_assignment
from repro.pairwise.ilp import (
    build_opt_model,
    extract_assignment,
    job_additive_coefficients,
)
from repro.solver.highs import solve_highs
from tests.conftest import FIG2_PAIRS


class TestCoefficients:
    def test_eq6_uses_refined_weights(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        coefficients = job_additive_coefficients(analyzer, "eq6")
        assert coefficients[1, 0] == pytest.approx(15 + 7)   # w=2
        assert coefficients[0, 2] == pytest.approx(6)        # w=1
        assert coefficients[0, 0] == pytest.approx(15)       # self t1

    def test_eq4_uses_segment_counts(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        coefficients = job_additive_coefficients(analyzer, "eq4")
        # (J2, J1): one segment, et1 = 15 -> 15 (not 22).
        assert coefficients[1, 0] == pytest.approx(15)
        assert coefficients[0, 0] == pytest.approx(15)       # self t1

    def test_unknown_equation_rejected(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        with pytest.raises(ValueError, match="OPT supports"):
            job_additive_coefficients(analyzer, "eq1")


class TestModelShape:
    def test_one_binary_per_relevant_pair(self, fig2_jobset):
        model = build_opt_model(fig2_jobset, "eq6")
        assert model.num_pair_vars == 4
        assert set(model.pair_vars) == {(0, 1), (0, 2), (1, 3), (2, 3)}

    def test_theta_variables_eq6(self, fig2_jobset):
        model = build_opt_model(fig2_jobset, "eq6")
        # N-1 = 2 theta per job, no lambdas.
        assert len(model.theta_vars) == 8
        assert len(model.lambda_vars) == 0

    def test_theta_lambda_variables_eq10(self, fig2_jobset):
        model = build_opt_model(fig2_jobset, "eq10")
        assert len(model.theta_vars) == 8      # stages 0, 1
        assert len(model.lambda_vars) == 4     # stage 2

    def test_faithful_mode_adds_selectors(self, fig2_jobset):
        compact = build_opt_model(fig2_jobset, "eq6", mode="compact")
        faithful = build_opt_model(fig2_jobset, "eq6", mode="faithful")
        assert not compact.selector_vars
        assert faithful.selector_vars
        assert faithful.problem.num_vars > compact.problem.num_vars

    def test_theta_lower_bound_includes_self(self, fig2_jobset):
        model = build_opt_model(fig2_jobset, "eq6")
        theta_0_0 = model.theta_vars[(0, 0)]
        # theta_{J1, S1} >= P_{1,1} = 5.
        assert model.problem.lower[theta_0_0] == pytest.approx(5.0)

    def test_invalid_mode_rejected(self, fig2_jobset):
        with pytest.raises(ValueError, match="mode"):
            build_opt_model(fig2_jobset, "eq6", mode="loose")


class TestModelSemantics:
    @pytest.mark.parametrize("mode", ["compact", "faithful"])
    def test_fixing_figure2_solution_is_feasible(self, fig2_jobset, mode):
        """Pin the pair variables to Figure 2(b) and solve: the model
        must accept it (delays 34/55/51/22 <= deadlines)."""
        model = build_opt_model(fig2_jobset, "eq6", mode=mode)
        problem = model.problem
        lower = problem.lower.copy()
        upper = problem.upper.copy()
        winners = {(min(a, b), max(a, b)): a for a, b in FIG2_PAIRS}
        for (i, k), var in model.pair_vars.items():
            value = 1.0 if winners[(i, k)] == i else 0.0
            lower[var] = upper[var] = value
        pinned = type(problem)(
            objective=problem.objective, integrality=problem.integrality,
            lower=lower, upper=upper, a_ub=problem.a_ub,
            b_ub=problem.b_ub, a_eq=problem.a_eq, b_eq=problem.b_eq,
            names=problem.names)
        result = solve_highs(pinned)
        assert result.feasible

    @pytest.mark.parametrize("mode", ["compact", "faithful"])
    def test_fixing_any_total_order_is_infeasible(self, fig2_jobset,
                                                  mode):
        """Pin the DM ordering (a total order): the model must reject
        it, because no ordering is feasible for Figure 2."""
        model = build_opt_model(fig2_jobset, "eq6", mode=mode)
        problem = model.problem
        lower = problem.lower.copy()
        upper = problem.upper.copy()
        assignment = dm_assignment(fig2_jobset)
        for (i, k), var in model.pair_vars.items():
            value = 1.0 if assignment.is_higher(i, k) else 0.0
            lower[var] = upper[var] = value
        pinned = type(problem)(
            objective=problem.objective, integrality=problem.integrality,
            lower=lower, upper=upper, a_ub=problem.a_ub,
            b_ub=problem.b_ub, a_eq=problem.a_eq, b_eq=problem.b_eq,
            names=problem.names)
        result = solve_highs(pinned)
        assert not result.feasible


class TestExtraction:
    def test_extract_respects_pair_variables(self, fig2_jobset):
        model = build_opt_model(fig2_jobset, "eq6")
        x = np.zeros(model.problem.num_vars)
        winners = {(min(a, b), max(a, b)): a for a, b in FIG2_PAIRS}
        for (i, k), var in model.pair_vars.items():
            x[var] = 1.0 if winners[(i, k)] == i else 0.0
        assignment = extract_assignment(model, x, fig2_jobset)
        expected = PairwiseAssignment.from_pairs(fig2_jobset, FIG2_PAIRS)
        assert assignment == expected

    def test_model_delays_match_analyzer(self, fig2_jobset):
        """Feasibility agreement: a solution accepted by the ILP always
        verifies against DelayAnalyzer (exercised via opt() which
        raises SolverError on mismatch)."""
        from repro.pairwise.opt import opt
        result = opt(fig2_jobset, "eq6", backend="highs")
        assert result.feasible
