"""Campaign execution: sharding, store checkpointing, progress."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    run_campaign,
    scenario_keys,
)
from repro.store import ResultStore

TINY_WORKLOAD = {"edge": {"num_aps": 4, "num_servers": 3}}


def tiny_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="tiny",
        axes={"family": ("edge", "poisson"), "jobs": (6, 8),
              "seed": (0, 1)},
        approaches=("dm", "dmr"),
        horizon=20.0,
        rate=0.3,
        workload=TINY_WORKLOAD,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def _deterministic(result):
    batch = [(point, case.seed, case.accepted, case.notes,
              case.system_heaviness)
             for point, case in result.batch]
    online = [(point, run.seed,
               {key: value for key, value in run.summary.items()
                if not key.endswith("_ms") and
                key != "events_per_sec"},
               run.final_admitted)
              for point, run in result.online]
    return batch, online


class TestRun:
    def test_results_line_up_with_expansion(self):
        runner = CampaignRunner(tiny_spec())
        result = runner.run()
        assert result.scenarios == len(runner.scenarios)
        expected = [s.point for s in runner.scenarios]
        produced = ([point for point, _ in result.batch] +
                    [point for point, _ in result.online])
        assert produced == expected

    def test_serial_equals_sharded(self):
        spec = tiny_spec()
        serial = run_campaign(spec, n_workers=1)
        sharded = run_campaign(spec, n_workers=2)
        assert _deterministic(serial) == _deterministic(sharded)

    def test_chunking_preserves_order(self):
        spec = tiny_spec()
        whole = CampaignRunner(spec, chunk_scenarios=100).run()
        chunked = CampaignRunner(spec, chunk_scenarios=1).run()
        assert _deterministic(whole) == _deterministic(chunked)

    def test_progress_lines(self):
        lines = []
        CampaignRunner(tiny_spec(), progress=lines.append,
                       chunk_scenarios=2).run()
        assert len(lines) == 4  # 4 batch + 4 online scenarios, by 2
        assert lines[0] == "[campaign tiny] 2/8 scenarios done (batch)"
        assert lines[-1] == \
            "[campaign tiny] 8/8 scenarios done (online)"


class TestStoreIntegration:
    def test_missing_counts_down_to_zero(self, tmp_path):
        spec = tiny_spec()
        runner = CampaignRunner(spec, store=ResultStore(tmp_path))
        assert runner.missing() == len(runner.scenarios)
        runner.run()
        warm = CampaignRunner(spec, store=ResultStore(tmp_path))
        assert warm.missing() == 0

    def test_missing_does_not_touch_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = CampaignRunner(tiny_spec(), store=store)
        runner.run()
        fresh = ResultStore(tmp_path)
        assert CampaignRunner(tiny_spec(), store=fresh).missing() == 0
        assert fresh.counters.hits == 0
        assert fresh.counters.misses == 0

    def test_scenario_keys_match_store_contents(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = CampaignRunner(tiny_spec(), store=store)
        runner.run()
        keys = scenario_keys(runner.scenarios, store)
        assert len(keys) == len(runner.scenarios)
        assert all(key in store for key in keys)

    def test_warm_run_is_all_hits(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, store=ResultStore(tmp_path))
        warm_store = ResultStore(tmp_path)
        warm = run_campaign(spec, store=warm_store)
        assert warm_store.counters.misses == 0
        assert warm_store.counters.writes == 0
        assert warm_store.counters.hits == warm.scenarios

    def test_cold_and_warm_deterministic_fields_agree(self, tmp_path):
        spec = tiny_spec()
        cold = run_campaign(spec, store=ResultStore(tmp_path))
        warm = run_campaign(spec, store=ResultStore(tmp_path))
        assert _deterministic(cold) == _deterministic(warm)

    def test_no_workers_floor(self):
        runner = CampaignRunner(tiny_spec(), n_workers=0)
        assert runner.n_workers == 1


class TestValidationHook:
    def test_validate_every_flows_to_online_specs(self):
        spec = tiny_spec(validate_every=2)
        runner = CampaignRunner(spec)
        online = [s for s in runner.scenarios if s.kind == "online"]
        assert online
        assert all(s.spec.validate_every == 2 for s in online)
        result = runner.run()
        assert all(not run.validation_failures
                   for _, run in result.online)


@pytest.mark.parametrize("n_workers", [1, 2])
def test_online_only_campaign(n_workers, tmp_path):
    spec = CampaignSpec(
        name="streams",
        axes={"family": ("poisson", "mmpp"), "jobs": (8,),
              "seed": (0, 1)},
        horizon=20.0, rate=0.3,
        workload={"stream": {"mean_burst": 10.0}})
    result = run_campaign(spec, n_workers=n_workers,
                          store=ResultStore(tmp_path))
    assert not result.batch
    assert len(result.online) == 4
