"""Delay-composition-algebra (DCA) end-to-end delay bounds.

This module implements every delay bound used in the paper:

========  ==========================================================
``eq1``   multi-stage single-resource pipeline, preemptive
          (Jayachandran & Abdelzaher 2008, reproduced as paper Eq. 1)
``eq2``   single-resource, non-preemptive (paper Eq. 2,
          OPA-incompatible -- see Observation IV.2 / Example 1)
``eq3``   MSMR, preemptive, extended DCA (paper Eq. 3)
``eq4``   MSMR, non-preemptive (paper Eq. 4, OPA-incompatible)
``eq5``   MSMR, non-preemptive, OPA-compatible variant of Eq. 4 with
          the blocking term taken over all other jobs (paper Eq. 5)
``eq6``   MSMR, preemptive, refined job-additive accounting via
          ``w_{i,k}`` (paper Eq. 6) -- the bound behind OPDCA
``eq10``  3-stage edge pipeline: preemptive server, non-preemptive
          download, batch release (paper Eq. 10)
========  ==========================================================

All bounds operate on boolean numpy masks over the job set: ``higher``
marks the higher-priority jobs ``H_i`` and ``lower`` the lower-priority
jobs ``L_i`` of the job under analysis.  Jobs whose interference windows
``[A_k, A_k + D_k]`` do not overlap ``[A_i, A_i + D_i]`` are filtered out
automatically, as prescribed in Section II of the paper.  An optional
``active`` mask removes jobs from the analysis altogether (admission
controllers use it for rejected jobs; it also restricts the
priority-independent blocking term of Eq. 5).

The *self* job-additive term in the MSMR bounds follows the refined
convention ``w_{i,i} = 1`` (a single ``t_{i,1}`` term).  A literal
reading of Eqs. 3-4, where the self term would be scaled like any other
pair, is available through ``self_coefficient="literal"`` and is used by
the pessimism ablation.

Batch evaluation
----------------
Two complementary fast paths keep the O(n^2) inner loops of Audsley's
OPA, DMR repair and the experiment sweeps out of Python:

* :meth:`DelayAnalyzer.delay_bounds_all` evaluates the chosen bound for
  *every* job in one shot from ``(n, n)`` higher/lower relation
  matrices, replacing ``n`` scalar :meth:`DelayAnalyzer.delay_bound`
  calls with a handful of vectorised ``numpy`` reductions over the
  ``(n, n, N)`` segment cache.  :meth:`delays_for_pairwise` and
  :meth:`delays_for_ordering` are thin wrappers around it, and
  ``SDCA.audsley_batch`` uses it to test all Audsley candidates of a
  priority level at once.
* Interference masks and evaluated bounds are memoised keyed on
  ``(i, equation, active)`` (masks serialised to bytes), so repeated
  evaluations with identical priority context -- ubiquitous in the
  OPA/OPDCA and admission-controller loops where only one job changes
  per iteration -- are answered from cache instead of being rebuilt
  from scratch.  Caches are bounded (FIFO eviction) and private to the
  analyzer, which is itself bound to one immutable job set.

Pairwise-contribution kernel cache
----------------------------------
The Audsley/admission level evaluations all share one structural
property: every candidate of a level is tested against the *same*
higher-priority set (``unassigned``) and the same lower-priority set
(``assigned``), i.e. the ``(n, n)`` relation matrices are column
masks in disguise.  :meth:`DelayAnalyzer.level_bounds` exploits this
through per-equation *contribution matrices*, built once per analyzer
(``kernel="paired"``, the default):

* ``C[i, k]``: the job-additive delay ``J_k`` contributes to ``J_i``
  when higher priority, pre-multiplied by the window-overlap filter --
  a level's job-additive term collapses to the masked matvec
  ``(C * cols).sum(axis=1)`` with ``cols = unassigned & active``;
* the premasked per-stage interference tensors
  :attr:`~repro.core.segments.SegmentCache.epq` /
  :attr:`~repro.core.segments.SegmentCache.epb` -- each stage-additive
  or blocking term is one column-masked row-max, with no per-level
  ``(n, n)`` relation mask ever rebuilt (and the priority-independent
  Eq. 5 blocking vector memoised per ``active`` context).

The paired kernel performs the same reductions over the same operands
in the same order as the reference broadcast path (``delay_bounds_all``
on broadcast rows), so its values are bitwise identical for every
candidate row (jobs in ``unassigned & active``); ``kernel="reference"``
keeps the tensor path selectable for equivalence testing, and analyzers
built with ``window_filter=False`` always use it (the contribution
tensors bake the window filter in).  Two further tiers ride the same
premasked operands: ``kernel="compiled"`` delegates the masked
reductions to the (optionally numba-jitted) loop primitives of
:mod:`repro.core.kernels.compiled`, equivalent to the reference within
``1e-9`` relative tolerance, and ``kernel="auto"`` resolves to the
fastest safe tier for the instance size at construction.  The full
tier matrix, equivalence contracts and dispatch rules live in
``docs/kernels.md``.

Online (streaming) support
--------------------------
The streaming admission engine (:mod:`repro.online`) analyses a live
subset of a fixed job universe, one arrival/departure at a time.  Three
hooks keep its per-event cost far below a cold re-analysis:

* an analyzer can be constructed around a pre-built (e.g. sliced)
  :class:`~repro.core.segments.SegmentCache` via the ``cache=``
  argument, skipping the segment algebra entirely;
* :meth:`DelayAnalyzer.delay_bounds_rows` evaluates the bound for a
  chosen subset of jobs only, bitwise identical to the corresponding
  rows of :meth:`DelayAnalyzer.delay_bounds_all`;
* :meth:`DelayAnalyzer.invalidate_job` purges exactly the memo entries
  whose context involves a departed job, so long-running engines keep
  every still-live entry instead of FIFO-evicting blindly.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.exceptions import ModelError
from repro.core.kernels import KERNEL_TIERS, resolve_kernel
from repro.core.kernels import compiled as _compiled_kernels
from repro.core.segments import SegmentCache
from repro.core.system import JobSet

#: Equations whose schedulability test satisfies the three
#: OPA-compatibility conditions (Observations IV.1/IV.2 and Section VI).
OPA_COMPATIBLE_EQUATIONS = frozenset({"eq1", "eq3", "eq5", "eq6", "eq10"})

#: All supported equation identifiers.
ALL_EQUATIONS = ("eq1", "eq2", "eq3", "eq4", "eq5", "eq6", "eq10")

#: Equations that take the lower-priority set into account.
LOWER_AWARE_EQUATIONS = frozenset({"eq2", "eq4", "eq10"})

#: OPA-compatible bounds whose batch kernels are monotone along the
#: Audsley trajectory *in floating point*, not just in exact
#: arithmetic: placing or discarding a job only ever zeroes elements
#: of the masked operands, every reduction runs over arrays of
#: unchanged length (numpy's pairwise-summation tree is a function of
#: length alone), and rounding is monotone -- so a candidate's
#: evaluated bound can never increase, ulp for ulp.  ``eq10`` is
#: excluded: its non-preemptive downlink term maximises over the
#: *growing* lower-priority set, so its net bound is only monotone in
#: exact arithmetic.  The online admission engine skips per-level
#: re-verification of carried feasibility exactly for this set.
FLOAT_MONOTONE_EQUATIONS = frozenset({"eq1", "eq3", "eq5", "eq6"})

MaskLike = "np.ndarray | Iterable[int]"

#: Entry caps of the per-analyzer memo dictionaries (FIFO eviction).
#: Sized for the working sets of one OPA/admission run: ``n`` distinct
#: active masks and a few thousand (i, context) bound evaluations.
_MASK_MEMO_LIMIT = 1024
_BOUND_MEMO_LIMIT = 8192
_BATCH_MEMO_LIMIT = 64
_BLOCKING_MEMO_LIMIT = 64

#: Kernel tiers selectable per analyzer (re-exported from
#: :mod:`repro.core.kernels`, the single registry shared with the CLI,
#: the campaign specs and the online admission cells).
KERNELS = KERNEL_TIERS

#: Row selector meaning "every job" in the batch kernels.
_ALL_ROWS = slice(None)


def _evict_to_limit(memo: dict, limit: int) -> None:
    """Drop oldest entries (insertion order) until under ``limit``."""
    while len(memo) >= limit:
        memo.pop(next(iter(memo)))


class _Contribution:
    """Premasked job-additive contribution matrices of one equation.

    ``C[i, k]`` is the job-additive delay ``J_k`` adds to the bound of
    ``J_i`` when ``J_k`` has higher priority, already multiplied by
    the window-overlap/self filter so a level's job-additive term is
    the single masked reduction ``(C * cols).sum(axis=1)``.  For the
    single-resource bounds the diagonal carries the ``t_{i,1}`` self
    term (it is part of the ``Q_i`` sum there); ``extra`` holds
    Eq. 1's arrive-after ``t_{k,2}`` coefficients; ``self_add`` the
    job-additive self contributions added after the pair sum.
    """

    __slots__ = ("C", "extra", "self_add")

    def __init__(self, C: np.ndarray,
                 extra: "np.ndarray | None" = None,
                 self_add: "np.ndarray | None" = None) -> None:
        self.C = C
        self.extra = extra
        self.self_add = self_add


class DelayAnalyzer:
    """Vectorised evaluator for the paper's delay bounds.

    Parameters
    ----------
    jobset:
        The job set under analysis.
    self_coefficient:
        ``"refined"`` (default) applies ``w_{i,i} = 1``;
        ``"literal"`` scales the self term exactly like an interfering
        job in Eqs. 3/4/6 (only used to quantify the refinement).
    window_filter:
        If true (default), drop jobs with non-overlapping interference
        windows from ``H_i``/``L_i`` before evaluating any bound.
    cache:
        Optionally supply a pre-built :class:`SegmentCache` for
        ``jobset`` instead of computing one.  The online admission
        engine uses this with :meth:`SegmentCache.restrict` to stand
        up a subset analyzer without re-running the segment algebra.
    kernel:
        ``"paired"`` (default) serves :meth:`level_bounds` from the
        pairwise-contribution matrices (see the module docstring);
        ``"reference"`` keeps every evaluation on the broadcast tensor
        path, used as the reference in kernel-equivalence tests;
        ``"compiled"`` runs the (optionally numba-jitted) loop
        primitives of :mod:`repro.core.kernels` and raises
        :class:`~repro.core.kernels.CompiledKernelUnavailable` when
        numba is absent; ``"auto"`` resolves to the fastest safe tier
        for the instance size (silently ``"paired"`` without numba).
        Resolution happens once, at construction -- :attr:`kernel` is
        the effective tier, :attr:`requested_kernel` the input.
    """

    def __init__(self, jobset: JobSet, *,
                 self_coefficient: str = "refined",
                 window_filter: bool = True,
                 cache: SegmentCache | None = None,
                 kernel: str = "paired") -> None:
        if self_coefficient not in ("refined", "literal"):
            raise ValueError(
                f"self_coefficient must be 'refined' or 'literal', "
                f"got {self_coefficient!r}")
        if cache is not None and cache.jobset is not jobset:
            raise ValueError(
                "the supplied SegmentCache was built for a different "
                "job set")
        self._jobset = jobset
        self._cache = cache if cache is not None else SegmentCache(jobset)
        self._self_coefficient = self_coefficient
        self._window_filter = window_filter
        self._requested_kernel = kernel
        #: Resolved once: "auto" picks a tier for this instance size,
        #: and unfiltered analyzers stay on the tensor path (the
        #: contribution tensors bake the window filter in).
        self._kernel = resolve_kernel(
            kernel, num_jobs=jobset.num_jobs, window_filter=window_filter)
        self._n = jobset.num_jobs
        self._num_stages = jobset.num_stages
        self._eye = np.eye(self._n, dtype=bool)
        #: (i, active) -> base interference mask / eq5 blocking mask.
        self._mask_memo: dict[tuple, np.ndarray] = {}
        #: (i, equation, higher, lower, active) -> bound value.
        self._bound_memo: dict[tuple, float] = {}
        #: (equation, x, active) -> delay vector of delays_for_pairwise.
        self._batch_memo: dict[tuple, np.ndarray] = {}
        #: equation -> job-additive contribution matrices (pure
        #: functions of the job set; never invalidated).
        self._contrib_memo: dict[str, _Contribution] = {}
        #: (equation, active) -> level-independent blocking vector
        #: (only eq5's blocking set is priority-independent).
        self._blocking_memo: dict[tuple, np.ndarray] = {}
        #: Lazily built per-pair removal caps (see :meth:`removal_caps`).
        self._removal_caps: np.ndarray | None = None
        #: equation -> exact-delta band operands (pure functions of the
        #: job set; never invalidated -- see :meth:`band_operands`).
        self._band_memo: dict[str, tuple] = {}
        #: Per-memo hit/miss tallies (see :meth:`cache_stats`); plain
        #: dict increments so the hot-path cost stays sub-microsecond.
        self._cache_hits = {"masks": 0, "bounds": 0, "batches": 0,
                            "blocking": 0, "contrib": 0}
        self._cache_misses = {"masks": 0, "bounds": 0, "batches": 0,
                              "blocking": 0, "contrib": 0}

    @property
    def jobset(self) -> JobSet:
        return self._jobset

    @property
    def cache(self) -> SegmentCache:
        return self._cache

    @property
    def window_filter(self) -> bool:
        """Whether non-overlapping interference windows are filtered."""
        return self._window_filter

    # ------------------------------------------------------------------
    # Mask plumbing
    # ------------------------------------------------------------------

    def as_mask(self, jobs: "np.ndarray | Iterable[int] | None") -> np.ndarray:
        """Normalise a job collection (mask, indices, or None) to a
        boolean mask of length ``n``."""
        if jobs is None:
            return np.zeros(self._n, dtype=bool)
        array = np.asarray(jobs)
        if array.dtype == bool:
            if array.shape != (self._n,):
                raise ValueError(
                    f"mask has shape {array.shape}, expected ({self._n},)")
            return array.copy()
        mask = np.zeros(self._n, dtype=bool)
        mask[array.astype(np.int64)] = True
        return mask

    def _normalize_active(
            self, active: np.ndarray | None) -> np.ndarray | None:
        """Canonicalise ``active``: an all-true mask restricts nothing
        and collapses to None so memo keys agree."""
        if active is None:
            return None
        active = np.asarray(active, dtype=bool)
        if active.all():
            return None
        return active

    @staticmethod
    def _active_key(active: np.ndarray | None) -> bytes | None:
        return None if active is None else active.tobytes()

    # ------------------------------------------------------------------
    # Delta updates (online arrivals/departures)
    # ------------------------------------------------------------------

    @staticmethod
    def _key_mask_contains(key_part: bytes | None, job: int) -> bool:
        """Whether a serialised mask key involves ``job``.

        ``None`` encodes "no restriction" (every job active), which
        trivially contains any job.
        """
        if key_part is None:
            return True
        return bool(np.frombuffer(key_part, dtype=bool)[job])

    def invalidate_job(self, job: int) -> dict[str, int]:
        """Drop every memoised entry whose context involves ``job``.

        Memo entries are pure functions of their keys, so they never
        become *wrong* -- but once a job departs an online system, any
        entry whose subject is ``job`` or whose higher/lower/active
        masks contain it cannot be queried again until the job
        returns.  Purging exactly those entries keeps the memos small
        without FIFO-evicting entries that are still live, which is
        what makes per-event cost of the streaming admission engine
        independent of how long the engine has been running.

        Returns the number of dropped entries per memo
        (``{"masks": ..., "bounds": ..., "batches": ...,
        "blocking": ...}``).
        """
        if not 0 <= job < self._n:
            raise ValueError(f"job {job} out of range for {self._n} jobs")
        dropped = {"masks": 0, "bounds": 0, "batches": 0, "blocking": 0}
        for key in [k for k in self._mask_memo
                    if k[0] == job
                    or self._key_mask_contains(k[1], job)]:
            del self._mask_memo[key]
            dropped["masks"] += 1
        for key in [k for k in self._bound_memo
                    if k[0] == job
                    or self._key_mask_contains(k[2], job)
                    or (k[3] is not None
                        and self._key_mask_contains(k[3], job))
                    or self._key_mask_contains(k[4], job)]:
            del self._bound_memo[key]
            dropped["bounds"] += 1
        for key in [k for k in self._batch_memo
                    if self._key_mask_contains(k[2], job)]:
            del self._batch_memo[key]
            dropped["batches"] += 1
        for key in [k for k in self._blocking_memo
                    if self._key_mask_contains(k[1], job)]:
            del self._blocking_memo[key]
            dropped["blocking"] += 1
        return dropped

    def memo_sizes(self) -> dict[str, int]:
        """Current entry counts of the internal memos (the contribution
        matrices are pure functions of the job set and never dropped)."""
        return {"masks": len(self._mask_memo),
                "bounds": len(self._bound_memo),
                "batches": len(self._batch_memo),
                "blocking": len(self._blocking_memo)}

    def cache_stats(self) -> dict:
        """Hit/miss tallies per memo plus current sizes.

        ``hits``/``misses`` count lookups since construction;
        ``sizes`` is :meth:`memo_sizes` plus the contribution-matrix
        count.  The online engines aggregate these into the
        ``repro.obs`` registry and trace spans.
        """
        sizes = self.memo_sizes()
        sizes["contrib"] = len(self._contrib_memo)
        return {"hits": dict(self._cache_hits),
                "misses": dict(self._cache_misses),
                "sizes": sizes}

    def _interference_base(self, i: int,
                           active: np.ndarray | None) -> np.ndarray:
        """Memoised mask of every job that could interfere with ``J_i``:
        all other jobs, window-filtered, restricted to ``active``.

        This is simultaneously the ``H_i``/``L_i`` pre-filter of
        :meth:`_interferers` and the priority-independent blocking set of
        Eq. 5, so one memo entry serves every bound of job ``i`` under
        the same admission state.
        """
        key = (i, self._active_key(active))
        base = self._mask_memo.get(key)
        if base is not None:
            self._cache_hits["masks"] += 1
        else:
            self._cache_misses["masks"] += 1
            if self._window_filter:
                base = self._jobset.overlaps[i].copy()
            else:
                base = np.ones(self._n, dtype=bool)
            base[i] = False
            if active is not None:
                base &= active
            _evict_to_limit(self._mask_memo, _MASK_MEMO_LIMIT)
            self._mask_memo[key] = base
        return base

    def _interferers(self, i: int, jobs: MaskLike,
                     active: np.ndarray | None = None) -> np.ndarray:
        """Mask of jobs that can actually interfere with ``J_i``.

        ``active`` optionally restricts the whole analysis to a subset of
        jobs (used by the admission controllers, which remove rejected
        jobs from the system entirely).
        """
        mask = self.as_mask(jobs)
        mask &= self._interference_base(i, self._normalize_active(active))
        return mask

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------

    def _stage_additive(self, i: int, q_mask: np.ndarray,
                        stages: slice) -> float:
        """``sum_j max_{J_k in Q_i} ep_{k,j}`` over the selected stages."""
        ep = self._cache.ep[i, :, stages]
        masked = np.where(q_mask[:, None], ep, 0.0)
        return float(masked.max(axis=0).sum())

    def _stage_additive_raw(self, i: int, q_mask: np.ndarray,
                            stages: slice) -> float:
        """Like :meth:`_stage_additive` but on raw ``P`` (Eqs. 1-2)."""
        processing = self._jobset.P[:, stages]
        masked = np.where(q_mask[:, None], processing, 0.0)
        return float(masked.max(axis=0).sum())

    def _self_term(self, i: int, equation: str) -> float:
        """Job-additive contribution of ``J_i`` to its own delay."""
        cache = self._cache
        if self._self_coefficient == "refined":
            return float(cache.t1[i])
        # Literal reading: the self pair has one segment spanning all N
        # stages (m = 1, u = 0 for N >= 2, v = 1, w = 2).
        if equation == "eq3":
            return float(2 * cache.m[i, i] * cache.et1[i, i])
        if equation in ("eq4", "eq5"):
            return float(cache.m[i, i] * cache.et1[i, i])
        if equation in ("eq6", "eq10"):
            w_self = int(cache.w[i, i])
            return cache.top_et_sum(i, i, w_self)
        return float(cache.t1[i])

    def _require_single_resource(self, equation: str) -> None:
        if not self._jobset.system.is_single_resource():
            raise ModelError(
                f"{equation} is defined for multi-stage single-resource "
                f"pipelines; use the MSMR bounds (eq3-eq6) instead")

    # ------------------------------------------------------------------
    # Single-resource pipeline bounds (paper Eqs. 1 and 2)
    # ------------------------------------------------------------------

    def eq1(self, i: int, higher: MaskLike, *,
            active: np.ndarray | None = None) -> float:
        """Preemptive single-resource bound (paper Eq. 1).

        ``Delta_i <= sum_{Q_i} t_{k,1} + sum_{Ha_i} t_{k,2}
        + sum_{j<N} max_{Q_i} P_{k,j}`` where ``Ha_i`` holds the
        higher-priority jobs arriving strictly after ``J_i``.
        """
        self._require_single_resource("eq1")
        h_mask = self._interferers(i, higher, active)
        q_mask = h_mask.copy()
        q_mask[i] = True
        arrive_after = h_mask & (self._jobset.A > self._jobset.A[i])
        job_additive = float(self._cache.t1[q_mask].sum())
        job_additive += float(self._cache.t2[arrive_after].sum())
        stage_additive = self._stage_additive_raw(
            i, q_mask, slice(0, self._num_stages - 1))
        return job_additive + stage_additive

    def eq2(self, i: int, higher: MaskLike, lower: MaskLike, *,
            active: np.ndarray | None = None) -> float:
        """Non-preemptive single-resource bound (paper Eq. 2).

        Adds one lower-priority blocking term per stage.  This bound is
        *not* OPA-compatible (Observation IV.2, Example 1).
        """
        self._require_single_resource("eq2")
        h_mask = self._interferers(i, higher, active)
        l_mask = self._interferers(i, lower, active)
        q_mask = h_mask.copy()
        q_mask[i] = True
        job_additive = float(self._cache.t1[q_mask].sum())
        stage_additive = self._stage_additive_raw(
            i, q_mask, slice(0, self._num_stages - 1))
        blocking = self._stage_additive_raw(
            i, l_mask, slice(0, self._num_stages))
        return job_additive + stage_additive + blocking

    # ------------------------------------------------------------------
    # MSMR bounds (paper Eqs. 3-6)
    # ------------------------------------------------------------------

    def eq3(self, i: int, higher: MaskLike, *,
            active: np.ndarray | None = None) -> float:
        """Preemptive MSMR bound with per-segment accounting (Eq. 3).

        Every higher-priority job contributes two job-additive terms of
        size ``et_{k,1}`` per shared segment.
        """
        h_mask = self._interferers(i, higher, active)
        q_mask = h_mask.copy()
        q_mask[i] = True
        cache = self._cache
        job_additive = float(
            (2.0 * cache.m[i, h_mask] * cache.et1[i, h_mask]).sum())
        job_additive += self._self_term(i, "eq3")
        stage_additive = self._stage_additive(
            i, q_mask, slice(0, self._num_stages - 1))
        return job_additive + stage_additive

    def eq4(self, i: int, higher: MaskLike, lower: MaskLike, *,
            active: np.ndarray | None = None) -> float:
        """Non-preemptive MSMR bound (paper Eq. 4, OPA-incompatible)."""
        h_mask = self._interferers(i, higher, active)
        l_mask = self._interferers(i, lower, active)
        return self._eq4_with_blocking_set(i, h_mask, l_mask)

    def eq5(self, i: int, higher: MaskLike, *,
            active: np.ndarray | None = None) -> float:
        """OPA-compatible non-preemptive MSMR bound (paper Eq. 5).

        Identical to Eq. 4 except that the per-stage blocking term is
        maximised over *all* other jobs instead of ``L_i``, removing the
        dependence on relative priorities below ``J_i``.
        """
        h_mask = self._interferers(i, higher, active)
        # The blocking set is priority-independent, so the memoised base
        # interference mask *is* the eq5 blocking set (do not mutate).
        everyone_else = self._interference_base(
            i, self._normalize_active(active))
        return self._eq4_with_blocking_set(i, h_mask, everyone_else)

    def _eq4_with_blocking_set(self, i: int, h_mask: np.ndarray,
                               blocking_mask: np.ndarray) -> float:
        q_mask = h_mask.copy()
        q_mask[i] = True
        cache = self._cache
        job_additive = float(
            (cache.m[i, h_mask] * cache.et1[i, h_mask]).sum())
        job_additive += self._self_term(i, "eq4")
        stage_additive = self._stage_additive(
            i, q_mask, slice(0, self._num_stages - 1))
        blocking = self._stage_additive(
            i, blocking_mask, slice(0, self._num_stages))
        return job_additive + stage_additive + blocking

    def eq6(self, i: int, higher: MaskLike, *,
            active: np.ndarray | None = None) -> float:
        """Refined preemptive MSMR bound (paper Eq. 6).

        Each higher-priority job contributes its ``w_{i,k}`` largest
        shared-stage processing times, where single-stage segments count
        once and longer segments twice.
        """
        h_mask = self._interferers(i, higher, active)
        job_additive = float(self._cache.W[i, h_mask].sum())
        if self._self_coefficient == "refined":
            job_additive += float(self._cache.W[i, i])
        else:
            job_additive += self._self_term(i, "eq6")
        q_mask = h_mask.copy()
        q_mask[i] = True
        stage_additive = self._stage_additive(
            i, q_mask, slice(0, self._num_stages - 1))
        return job_additive + stage_additive

    # ------------------------------------------------------------------
    # Edge-computing bound (paper Eq. 10)
    # ------------------------------------------------------------------

    def eq10(self, i: int, higher: MaskLike, lower: MaskLike, *,
             active: np.ndarray | None = None) -> float:
        """3-stage edge pipeline bound (paper Eq. 10).

        Stage 1 (uplink) and stage 2 (server) contribute one stage-
        additive term each over ``Q_i``; stage 3 (downlink) is
        non-preemptive, so one lower-priority job may block there.
        Batch release makes ``Ha_i`` empty, which the refined
        job-additive term already reflects.
        """
        if self._num_stages != 3:
            raise ModelError(
                f"eq10 models the 3-stage edge pipeline, "
                f"system has {self._num_stages} stages")
        h_mask = self._interferers(i, higher, active)
        l_mask = self._interferers(i, lower, active)
        q_mask = h_mask.copy()
        q_mask[i] = True
        job_additive = float(self._cache.W[i, h_mask].sum())
        job_additive += (float(self._cache.W[i, i])
                         if self._self_coefficient == "refined"
                         else self._self_term(i, "eq10"))
        ep = self._cache.ep[i]
        uplink = float(np.where(q_mask, ep[:, 0], 0.0).max())
        server = float(np.where(q_mask, ep[:, 1], 0.0).max())
        downlink = float(np.where(l_mask, ep[:, 2], 0.0).max())
        return job_additive + uplink + server + downlink

    # ------------------------------------------------------------------
    # Uniform entry point
    # ------------------------------------------------------------------

    def delay_bound(self, i: int, higher: MaskLike,
                    lower: MaskLike | None = None, *,
                    equation: str = "eq6",
                    active: np.ndarray | None = None) -> float:
        """Evaluate the chosen bound for job ``i``.

        ``lower`` is required by the lower-priority-aware bounds
        (``eq2``, ``eq4``, ``eq10``) and ignored by the others.

        Evaluations are memoised keyed on ``(i, equation, higher,
        lower, active)``; repeated queries with an identical priority
        context (the common case inside the OPA and admission loops)
        are answered from cache.
        """
        if equation not in ALL_EQUATIONS:
            raise ValueError(f"unknown equation {equation!r}; "
                             f"expected one of {ALL_EQUATIONS}")
        lower_aware = equation in LOWER_AWARE_EQUATIONS
        if lower_aware and lower is None:
            raise ValueError(f"{equation} needs the lower-priority set")
        active = self._normalize_active(active)
        h_mask = self.as_mask(higher)
        l_mask = self.as_mask(lower) if lower_aware else None
        key = (i, equation, h_mask.tobytes(),
               l_mask.tobytes() if lower_aware else None,
               self._active_key(active))
        try:
            value = self._bound_memo[key]
            self._cache_hits["bounds"] += 1
            return value
        except KeyError:
            self._cache_misses["bounds"] += 1
        if equation == "eq2":
            value = self.eq2(i, h_mask, l_mask, active=active)
        elif equation == "eq4":
            value = self.eq4(i, h_mask, l_mask, active=active)
        elif equation == "eq10":
            value = self.eq10(i, h_mask, l_mask, active=active)
        elif equation == "eq1":
            value = self.eq1(i, h_mask, active=active)
        elif equation == "eq3":
            value = self.eq3(i, h_mask, active=active)
        elif equation == "eq5":
            value = self.eq5(i, h_mask, active=active)
        else:
            value = self.eq6(i, h_mask, active=active)
        _evict_to_limit(self._bound_memo, _BOUND_MEMO_LIMIT)
        self._bound_memo[key] = value
        return value

    # ------------------------------------------------------------------
    # Batch evaluation (used by OPA/OPDCA, DMR, OPT verification and
    # the experiment sweeps)
    # ------------------------------------------------------------------

    def _batch_masks(self, relation: np.ndarray,
                     active: np.ndarray | None,
                     rows=_ALL_ROWS) -> np.ndarray:
        """Row-wise interference filtering of a relation matrix: the
        batch counterpart of :meth:`_interferers`.

        ``relation`` holds one length-``n`` candidate row per evaluated
        job; ``rows`` selects which jobs those rows belong to (all of
        them by default).
        """
        mask = np.asarray(relation, dtype=bool) & ~self._eye[rows]
        if self._window_filter:
            mask = mask & self._jobset.overlaps[rows]
        if active is not None:
            mask = mask & active[None, :]
        return mask

    def _batch_stage_additive(self, q: np.ndarray, per_pair: np.ndarray,
                              stages: slice) -> np.ndarray:
        """``sum_j max_{Q_i} ep_{k,j}`` for every row of ``q`` at once."""
        masked = np.where(q[:, :, None], per_pair, 0.0)
        return masked.max(axis=1)[:, stages].sum(axis=1)

    def _batch_self_term(self, equation: str) -> np.ndarray:
        """Vector of job-additive self contributions (all jobs)."""
        cache = self._cache
        if self._self_coefficient == "refined":
            return cache.t1.astype(float)
        diag = np.arange(self._n)
        if equation == "eq3":
            return 2.0 * cache.m[diag, diag] * cache.et1[diag, diag]
        if equation in ("eq4", "eq5"):
            return (cache.m[diag, diag]
                    * cache.et1[diag, diag]).astype(float)
        if equation in ("eq6", "eq10"):
            count = np.minimum(cache.w[diag, diag], self._num_stages)
            values = np.where(
                count > 0,
                cache.et_cumsum[diag, diag, np.maximum(count, 1) - 1],
                0.0)
            return values
        return cache.t1.astype(float)

    def delay_bounds_all(self, higher_of: np.ndarray,
                         lower_of: np.ndarray | None = None, *,
                         equation: str = "eq6",
                         active: np.ndarray | None = None) -> np.ndarray:
        """Evaluate the chosen bound for **every** job in one shot.

        ``higher_of``/``lower_of`` are ``(n, n)`` boolean matrices whose
        row ``i`` holds the candidate higher-/lower-priority sets of
        ``J_i`` (self entries and non-overlapping or inactive jobs are
        filtered internally, exactly as in :meth:`delay_bound`).  Rows
        of jobs outside ``active`` are returned as ``nan``.

        This is the vectorised fast path behind
        :meth:`delays_for_pairwise`, ``SDCA.audsley_batch`` and the
        admission controllers: one call replaces ``n`` scalar
        :meth:`delay_bound` evaluations, turning the O(n^2) inner loops
        of OPA/OPDCA into a handful of numpy reductions.
        """
        if equation not in ALL_EQUATIONS:
            raise ValueError(f"unknown equation {equation!r}; "
                             f"expected one of {ALL_EQUATIONS}")
        n = self._n
        higher_of = np.asarray(higher_of, dtype=bool)
        if higher_of.shape != (n, n):
            raise ValueError(f"higher_of has shape {higher_of.shape}, "
                             f"expected {(n, n)}")
        lower_aware = equation in LOWER_AWARE_EQUATIONS
        if lower_aware:
            if lower_of is None:
                raise ValueError(
                    f"{equation} needs the lower-priority set")
            lower_of = np.asarray(lower_of, dtype=bool)
            if lower_of.shape != (n, n):
                raise ValueError(f"lower_of has shape {lower_of.shape}, "
                                 f"expected {(n, n)}")
        active = self._normalize_active(active)
        delays = self._batch_dispatch(higher_of, lower_of, equation,
                                      active, _ALL_ROWS)
        if active is not None:
            delays = np.where(active, delays, np.nan)
        return delays

    def delay_bounds_rows(self, rows: "np.ndarray | Iterable[int]",
                          higher_of_rows: np.ndarray,
                          lower_of_rows: np.ndarray | None = None, *,
                          equation: str = "eq6",
                          active: np.ndarray | None = None) -> np.ndarray:
        """Evaluate the chosen bound for a *subset* of jobs in one shot.

        ``rows`` lists the job indices under analysis; row ``r`` of the
        ``(len(rows), n)`` matrices ``higher_of_rows``/``lower_of_rows``
        holds the candidate higher-/lower-priority set of job
        ``rows[r]``.  Semantically this equals slicing
        ``delay_bounds_all(...)[rows]`` -- each returned value is
        bitwise identical to the corresponding full-batch entry -- but
        only the selected rows are ever materialised, turning the
        per-level cost of a lazy Audsley scan from ``O(n^2 N)`` into
        ``O(len(rows) * n * N)``.  This is the evaluation kernel of the
        online admission engine's chunked candidate scan
        (:func:`repro.online.incremental.incremental_admission`).

        Entries of jobs outside ``active`` are returned as ``nan``.
        """
        if equation not in ALL_EQUATIONS:
            raise ValueError(f"unknown equation {equation!r}; "
                             f"expected one of {ALL_EQUATIONS}")
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1:
            raise ValueError(f"rows must be 1-d, got shape {rows.shape}")
        n = self._n
        higher_of_rows = np.asarray(higher_of_rows, dtype=bool)
        if higher_of_rows.shape != (rows.size, n):
            raise ValueError(
                f"higher_of_rows has shape {higher_of_rows.shape}, "
                f"expected {(rows.size, n)}")
        if equation in LOWER_AWARE_EQUATIONS:
            if lower_of_rows is None:
                raise ValueError(
                    f"{equation} needs the lower-priority set")
            lower_of_rows = np.asarray(lower_of_rows, dtype=bool)
            if lower_of_rows.shape != (rows.size, n):
                raise ValueError(
                    f"lower_of_rows has shape {lower_of_rows.shape}, "
                    f"expected {(rows.size, n)}")
        active = self._normalize_active(active)
        delays = self._batch_dispatch(higher_of_rows, lower_of_rows,
                                      equation, active, rows)
        if active is not None:
            delays = np.where(active[rows], delays, np.nan)
        return delays

    def delay_bound_level(self, i: int, higher_mask: np.ndarray,
                          lower_mask: np.ndarray | None = None, *,
                          equation: str = "eq6",
                          active: np.ndarray | None = None) -> float:
        """Fused single-candidate probe of one Audsley level.

        Evaluates the chosen bound for job ``i`` against the 1-d
        candidate masks ``higher_mask``/``lower_mask`` -- bitwise
        identical to
        ``delay_bounds_rows([i], higher_mask[None, :], ...)[0]``
        (every reduction runs over the same length-``n`` operands, so
        numpy's pairwise summation groups identically) -- but with a
        fraction of the kernel launches.  This is the hot probe of the
        online engine's lazy admission scan, where the typical level
        places its very first candidate.
        """
        if equation not in ALL_EQUATIONS:
            raise ValueError(f"unknown equation {equation!r}; "
                             f"expected one of {ALL_EQUATIONS}")
        lower_aware = equation in LOWER_AWARE_EQUATIONS
        if lower_aware and lower_mask is None:
            raise ValueError(f"{equation} needs the lower-priority set")
        active = self._normalize_active(active)
        if active is not None and not active[i]:
            return float("nan")
        # The self-excluded, window-filtered, active-restricted base is
        # shared by every mask of this (i, active) context and memoised
        # on the analyzer, so repeated probes of the same candidate
        # across Audsley levels pay for it once.
        base = self._interference_base(i, active)

        def level_mask(relation: np.ndarray) -> np.ndarray:
            return np.asarray(relation, dtype=bool) & base

        cache = self._cache
        h = level_mask(higher_mask)
        q = h | self._eye[i]
        last = self._num_stages - 1

        def stage_additive(mask: np.ndarray, per_pair: np.ndarray,
                           stop: int) -> float:
            masked = np.where(mask[:, None], per_pair, 0.0)
            return float(masked.max(axis=0)[:stop].sum())

        if equation in ("eq6", "eq10"):
            job_additive = float((cache.W[i] * h).sum())
            job_additive += (float(cache.W[i, i])
                             if self._self_coefficient == "refined"
                             else float(self._batch_self_term(equation)[i]))
            if equation == "eq6":
                return job_additive + stage_additive(q, cache.ep[i], last)
            if self._num_stages != 3:
                raise ModelError(
                    f"eq10 models the 3-stage edge pipeline, "
                    f"system has {self._num_stages} stages")
            low = level_mask(lower_mask)
            ep = cache.ep[i]
            uplink = float(np.where(q, ep[:, 0], 0.0).max())
            server = float(np.where(q, ep[:, 1], 0.0).max())
            downlink = float(np.where(low, ep[:, 2], 0.0).max())
            return job_additive + uplink + server + downlink
        if equation in ("eq4", "eq5"):
            job_additive = float((cache.m[i] * cache.et1[i] * h).sum())
            job_additive += float(self._batch_self_term("eq4")[i])
            # The eq5 blocking set is priority-independent: it *is*
            # the memoised base mask (do not mutate).
            blocking_mask = (level_mask(lower_mask) if equation == "eq4"
                             else base)
            return (job_additive
                    + stage_additive(q, cache.ep[i], last)
                    + stage_additive(blocking_mask, cache.ep[i],
                                     self._num_stages))
        if equation == "eq3":
            job_additive = float(
                (2.0 * cache.m[i] * cache.et1[i] * h).sum())
            job_additive += float(self._batch_self_term("eq3")[i])
            return job_additive + stage_additive(q, cache.ep[i], last)
        # Single-resource bounds (eq1/eq2) on raw processing times.
        self._require_single_resource(equation)
        raw = self._jobset.P
        job_additive = float((cache.t1 * q).sum())
        if equation == "eq1":
            arrivals = self._jobset.A
            arrive_after = h & (arrivals > arrivals[i])
            job_additive += float((cache.t2 * arrive_after).sum())
            return job_additive + stage_additive(q, raw, last)
        low = level_mask(lower_mask)
        return (job_additive + stage_additive(q, raw, last)
                + stage_additive(low, raw, self._num_stages))

    # ------------------------------------------------------------------
    # Level evaluation (the Audsley/admission hot path)
    # ------------------------------------------------------------------

    @property
    def kernel(self) -> str:
        """The effective level-evaluation kernel of this analyzer."""
        return self._kernel

    @property
    def requested_kernel(self) -> str:
        """The kernel requested at construction, before ``auto`` and
        window-filter resolution (see :attr:`kernel`)."""
        return self._requested_kernel

    def level_bounds(self, unassigned: np.ndarray,
                     assigned_lower: np.ndarray | None = None, *,
                     equation: str = "eq6",
                     active: np.ndarray | None = None,
                     rows: "np.ndarray | Iterable[int] | None" = None
                     ) -> np.ndarray:
        """Delay bounds of every Audsley candidate at one priority level.

        Candidate ``J_i`` is evaluated with ``H_i`` = ``unassigned``
        minus itself and ``L_i`` = ``assigned_lower`` -- the context of
        ``SDCA.audsley_batch`` and the admission controllers -- for all
        candidates at once.  Semantically this equals
        ``delay_bounds_all`` on row-broadcast copies of the two masks,
        and with ``rows`` (job indices) only the selected rows are
        materialised, exactly like :meth:`delay_bounds_rows`.

        Under the default ``kernel="paired"`` the evaluation runs on
        the pairwise-contribution cache: the job-additive term is the
        masked reduction ``(C * cols).sum(axis=1)`` with ``cols =
        unassigned & active``, and each stage-additive/blocking term is
        one column-masked row-max over a premasked ``(n, n)`` slice of
        :attr:`SegmentCache.epq`/:attr:`SegmentCache.epb` -- no
        ``(n, n)`` relation mask is ever rebuilt per level, and Eq. 5's
        priority-independent blocking vector is computed once per
        ``active`` context.  Every reduction runs over the same
        operands in the same association as the reference broadcast
        path, so values are **bitwise identical** between the two
        kernels for every actual candidate (jobs in ``unassigned &
        active``); rows outside that set are only meaningful on the
        reference path.  ``kernel="compiled"`` runs the same premasked
        operands through the left-fold loop primitives of
        :mod:`repro.core.kernels.compiled`, agreeing with the
        reference within ``1e-9`` relative tolerance (the tier matrix
        lives in ``docs/kernels.md``).  Entries of jobs outside
        ``active`` are ``nan``.
        """
        if equation not in ALL_EQUATIONS:
            raise ValueError(f"unknown equation {equation!r}; "
                             f"expected one of {ALL_EQUATIONS}")
        n = self._n
        unassigned = np.asarray(unassigned, dtype=bool)
        if unassigned.shape != (n,):
            raise ValueError(f"unassigned has shape {unassigned.shape}, "
                             f"expected ({n},)")
        lower_aware = equation in LOWER_AWARE_EQUATIONS
        if lower_aware:
            if assigned_lower is None:
                raise ValueError(
                    f"{equation} needs the lower-priority set")
            assigned_lower = np.asarray(assigned_lower, dtype=bool)
            if assigned_lower.shape != (n,):
                raise ValueError(
                    f"assigned_lower has shape {assigned_lower.shape}, "
                    f"expected ({n},)")
        active = self._normalize_active(active)
        if rows is None:
            row_sel = _ALL_ROWS
        else:
            row_sel = np.asarray(rows, dtype=np.int64)
            if row_sel.ndim != 1:
                raise ValueError(
                    f"rows must be 1-d, got shape {row_sel.shape}")
        if self._kernel == "paired":
            delays = self._level_paired(equation, unassigned,
                                        assigned_lower, active, row_sel)
        elif self._kernel == "compiled":
            delays = self._level_compiled(equation, unassigned,
                                          assigned_lower, active, row_sel)
        else:
            size = n if row_sel is _ALL_ROWS else row_sel.size
            higher_of = np.broadcast_to(unassigned, (size, n))
            lower_of = (np.broadcast_to(assigned_lower, (size, n))
                        if lower_aware else None)
            delays = self._batch_dispatch(higher_of, lower_of, equation,
                                          active, row_sel)
        if active is not None:
            delays = np.where(active[row_sel], delays, np.nan)
        return delays

    def _contribution(self, equation: str) -> _Contribution:
        """Job-additive contribution matrices of one equation (built
        once per analyzer; pure functions of the job set)."""
        contrib = self._contrib_memo.get(equation)
        if contrib is not None:
            self._cache_hits["contrib"] += 1
            return contrib
        self._cache_misses["contrib"] += 1
        cache = self._cache
        base = self._jobset.overlaps & ~self._eye
        extra = None
        self_add = None
        if equation in ("eq1", "eq2"):
            # The t_{k,1} sum runs over Q_i = H_i + {J_i}: keep the
            # self term on the diagonal so the summation tree matches
            # the reference (t1 * q).sum(axis=1) exactly.
            C = cache.t1[None, :] * (base | self._eye)
            if equation == "eq1":
                arrivals = self._jobset.A
                extra = cache.t2[None, :] * (
                    base & (arrivals[None, :] > arrivals[:, None]))
        elif equation == "eq3":
            C = (2.0 * cache.m * cache.et1) * base
            self_add = self._batch_self_term("eq3")
        elif equation in ("eq4", "eq5"):
            C = (cache.m * cache.et1) * base
            self_add = self._batch_self_term("eq4")
        else:  # eq6 / eq10
            C = cache.W * base
            if self._self_coefficient == "refined":
                self_add = cache.W.diagonal().copy()
            else:
                self_add = self._batch_self_term(equation)
        contrib = _Contribution(C, extra, self_add)
        self._contrib_memo[equation] = contrib
        return contrib

    @staticmethod
    def _mask_plan(mask: np.ndarray) -> "tuple[int, np.ndarray | None]":
        """Reduction strategy for one column mask: its population count
        and, when sparse enough for column compression to pay off, the
        compressed column index (``None`` keeps the dense path)."""
        count = int(mask.sum())
        if 0 < count * 4 <= mask.size:
            return count, np.flatnonzero(mask)
        return count, None

    @staticmethod
    def _plane_max(plane: np.ndarray, mask: np.ndarray,
                   count: int, idx: "np.ndarray | None") -> np.ndarray:
        """Column-masked row-max of one stage plane.

        Every strategy is bitwise identical to
        ``np.where(mask, plane, 0.0).max(axis=1)``: max is an exact,
        order-independent reduction, and the 0.0 fill of the dropped
        columns is reproduced by ``initial=0.0`` on the compressed
        path (a masked-out column always exists there, so the dense
        result is floored at 0.0 too).
        """
        if count == 0:
            return np.zeros(plane.shape[0])
        if idx is not None:
            return plane[:, idx].max(axis=1, initial=0.0)
        return np.where(mask, plane, 0.0).max(axis=1)

    def _paired_stage_sum(self, field: str, rows, mask: np.ndarray,
                          stop: int) -> np.ndarray:
        """``sum_{j < stop} max_k mask[k] * tensor[:, k, j]`` over the
        stage-major twin ``field + "_s"`` of a contribution tensor.

        Walking one C-contiguous stage plane per iteration (instead of
        a stage slice of the job-major tensor, which strides by ``N``
        and pulls the whole ``(n, n, N)`` tensor through cache per
        stage) is what closed the large-``n`` gap of the paired
        kernel.  The per-stage maxima are collected into a ``(rows,
        stop)`` buffer and reduced with one ``sum(axis=1)``, which
        reproduces the reference path's summation tree (numpy's
        pairwise reduction depends only on the axis length).
        """
        tensor_s = getattr(self._cache, field + "_s")
        nrows = tensor_s.shape[1] if rows is _ALL_ROWS else rows.size
        count, idx = self._mask_plan(mask)
        if count == 0:
            return np.zeros(nrows)
        maxima = np.empty((nrows, stop))
        for j in range(stop):
            plane = tensor_s[j]
            if rows is not _ALL_ROWS:
                plane = plane[rows]
            maxima[:, j] = self._plane_max(plane, mask, count, idx)
        return maxima.sum(axis=1)

    def _level_paired(self, equation: str, unassigned: np.ndarray,
                      assigned_lower: np.ndarray | None,
                      active: np.ndarray | None, rows) -> np.ndarray:
        """Paired-kernel level evaluation (see :meth:`level_bounds`).

        :meth:`level_bound_single` is the scalar twin of this dispatch
        (1-d reductions, a fraction of the kernel launches); any change
        to an equation's term assembly here must be mirrored there --
        their bitwise agreement is pinned by
        ``test_single_probe_matches_batch_row``.
        """
        cache = self._cache
        cols = unassigned if active is None else unassigned & active
        contrib = self._contribution(equation)
        C = contrib.C[rows]
        job_additive = (C * cols).sum(axis=1)
        if contrib.extra is not None:
            job_additive += (contrib.extra[rows] * cols).sum(axis=1)
        if contrib.self_add is not None:
            job_additive += contrib.self_add[rows]
        last = self._num_stages - 1
        if equation in ("eq1", "eq2"):
            self._require_single_resource(equation)
            stage_additive = self._paired_stage_sum(
                "pq", rows, cols, last)
            if equation == "eq1":
                return job_additive + stage_additive
            low = (assigned_lower if active is None
                   else assigned_lower & active)
            blocking = self._paired_stage_sum(
                "pb", rows, low, self._num_stages)
            return job_additive + stage_additive + blocking
        if equation == "eq10":
            if self._num_stages != 3:
                raise ModelError(
                    f"eq10 models the 3-stage edge pipeline, "
                    f"system has {self._num_stages} stages")
            count, idx = self._mask_plan(cols)
            uplink_plane, server_plane = cache.epq_s[0], cache.epq_s[1]
            downlink_plane = cache.epb_s[2]
            if rows is not _ALL_ROWS:
                uplink_plane = uplink_plane[rows]
                server_plane = server_plane[rows]
                downlink_plane = downlink_plane[rows]
            uplink = self._plane_max(uplink_plane, cols, count, idx)
            server = self._plane_max(server_plane, cols, count, idx)
            low = (assigned_lower if active is None
                   else assigned_lower & active)
            lcount, lidx = self._mask_plan(low)
            downlink = self._plane_max(downlink_plane, low, lcount, lidx)
            return job_additive + uplink + server + downlink
        stage_additive = self._paired_stage_sum(
            "epq", rows, cols, last)
        if equation == "eq4":
            low = (assigned_lower if active is None
                   else assigned_lower & active)
            blocking = self._paired_stage_sum(
                "epb", rows, low, self._num_stages)
            return job_additive + stage_additive + blocking
        if equation == "eq5":
            blocking = self._eq5_blocking(active)[rows]
            return job_additive + stage_additive + blocking
        return job_additive + stage_additive  # eq3 / eq6

    def _level_compiled(self, equation: str, unassigned: np.ndarray,
                        assigned_lower: np.ndarray | None,
                        active: np.ndarray | None, rows) -> np.ndarray:
        """Compiled-tier level evaluation: the per-equation term
        assembly of :meth:`_level_paired` with the masked reductions
        delegated to the loop primitives of
        :mod:`repro.core.kernels.compiled` (numba-jitted when
        available, plain-python fallback otherwise).

        The left-fold sums round differently from the numpy pairwise
        trees, so this tier matches the reference within the
        documented ``1e-9`` relative tolerance instead of bitwise;
        single-row probes route through this very method (``rows`` of
        length one), so single-vs-batch stays bitwise within the tier.
        """
        cache = self._cache
        cols = unassigned if active is None else unassigned & active
        contrib = self._contribution(equation)
        if rows is _ALL_ROWS:
            row_idx = np.arange(self._n, dtype=np.int64)
        else:
            row_idx = rows
        out = np.zeros(row_idx.size)
        last = self._num_stages - 1
        if equation in ("eq3", "eq5", "eq6"):
            # The fused frontier probe covers the job-additive pair
            # sum, the self term and the stage-additive maxima in one
            # jit dispatch -- the online admission hot path.  Every
            # row's accumulation is independent of which other rows
            # are evaluated, so arbitrary row subsets stay bitwise
            # identical to the corresponding full-batch entries
            # within this tier.
            _compiled_kernels.level_probe(
                contrib.C, contrib.self_add, cache.epq, cols, row_idx,
                last, out)
            if equation == "eq5":
                # The priority-independent blocking vector is shared
                # with the paired tier (memoised per ``active``).
                out += self._eq5_blocking(active)[row_idx]
            return out
        _compiled_kernels.pair_sum(contrib.C, cols, row_idx, out)
        if contrib.extra is not None:
            _compiled_kernels.pair_sum(contrib.extra, cols, row_idx, out)
        if contrib.self_add is not None:
            out += contrib.self_add[row_idx]
        if equation in ("eq1", "eq2"):
            self._require_single_resource(equation)
            _compiled_kernels.stage_sum(
                cache.pq, cols, row_idx, 0, last, out)
            if equation == "eq2":
                low = (assigned_lower if active is None
                       else assigned_lower & active)
                _compiled_kernels.stage_sum(
                    cache.pb, low, row_idx, 0, self._num_stages, out)
            return out
        if equation == "eq10":
            if self._num_stages != 3:
                raise ModelError(
                    f"eq10 models the 3-stage edge pipeline, "
                    f"system has {self._num_stages} stages")
            _compiled_kernels.stage_sum(
                cache.epq, cols, row_idx, 0, 2, out)
            low = (assigned_lower if active is None
                   else assigned_lower & active)
            _compiled_kernels.stage_sum(
                cache.epb, low, row_idx, 2, 3, out)
            return out
        _compiled_kernels.stage_sum(
            cache.epq, cols, row_idx, 0, last, out)
        if equation == "eq4":
            low = (assigned_lower if active is None
                   else assigned_lower & active)
            _compiled_kernels.stage_sum(
                cache.epb, low, row_idx, 0, self._num_stages, out)
        return out

    def level_bound_single(self, i: int, unassigned: np.ndarray,
                           assigned_lower: np.ndarray | None = None, *,
                           equation: str = "eq6",
                           active: np.ndarray | None = None) -> float:
        """One Audsley candidate's bound at one level.

        Bitwise identical to ``level_bounds(...)[i]`` (1-d reductions
        over length-``n`` operands group exactly like the per-row
        reductions of the 2-d kernels), at a fraction of the kernel
        launches: this is the frontier re-verification probe of
        :func:`repro.core.opa.audsley_frontier` and the first-candidate
        probe of the online engine's lazy admission scan.
        """
        if self._kernel != "paired":
            return float(self.level_bounds(
                unassigned, assigned_lower, equation=equation,
                active=active, rows=np.array([i]))[0])
        if equation not in ALL_EQUATIONS:
            raise ValueError(f"unknown equation {equation!r}; "
                             f"expected one of {ALL_EQUATIONS}")
        lower_aware = equation in LOWER_AWARE_EQUATIONS
        if lower_aware and assigned_lower is None:
            raise ValueError(f"{equation} needs the lower-priority set")
        active = self._normalize_active(active)
        if active is not None and not active[i]:
            return float("nan")
        cache = self._cache
        cols = unassigned if active is None else unassigned & active
        contrib = self._contribution(equation)
        job_additive = (contrib.C[i] * cols).sum()
        if contrib.extra is not None:
            job_additive += (contrib.extra[i] * cols).sum()
        if contrib.self_add is not None:
            job_additive += contrib.self_add[i]
        last = self._num_stages - 1
        ccount, cidx = self._mask_plan(cols)

        def row_max(row: np.ndarray, mask: np.ndarray, count: int,
                    idx: "np.ndarray | None") -> float:
            # Scalar twin of _plane_max: bitwise identical to
            # np.where(mask, row, 0.0).max() on every strategy.
            if count == 0:
                return 0.0
            if idx is not None:
                return row[idx].max(initial=0.0)
            return np.where(mask, row, 0.0).max()

        def stage_sum(field: str, mask: np.ndarray, stop: int,
                      count: int, idx: "np.ndarray | None") -> float:
            # Row i of each stage-major plane is one contiguous read.
            if count == 0:
                return 0.0
            tensor_s = getattr(cache, field + "_s")
            maxima = np.empty(stop)
            for j in range(stop):
                maxima[j] = row_max(tensor_s[j, i], mask, count, idx)
            return maxima.sum()

        if equation in ("eq1", "eq2"):
            self._require_single_resource(equation)
            stage_additive = stage_sum("pq", cols, last, ccount, cidx)
            if equation == "eq1":
                return float(job_additive + stage_additive)
            low = (assigned_lower if active is None
                   else assigned_lower & active)
            lcount, lidx = self._mask_plan(low)
            blocking = stage_sum("pb", low, self._num_stages,
                                 lcount, lidx)
            return float(job_additive + stage_additive + blocking)
        if equation == "eq10":
            if self._num_stages != 3:
                raise ModelError(
                    f"eq10 models the 3-stage edge pipeline, "
                    f"system has {self._num_stages} stages")
            uplink = row_max(cache.epq_s[0, i], cols, ccount, cidx)
            server = row_max(cache.epq_s[1, i], cols, ccount, cidx)
            low = (assigned_lower if active is None
                   else assigned_lower & active)
            lcount, lidx = self._mask_plan(low)
            downlink = row_max(cache.epb_s[2, i], low, lcount, lidx)
            return float(job_additive + uplink + server + downlink)
        stage_additive = stage_sum("epq", cols, last, ccount, cidx)
        if equation == "eq4":
            low = (assigned_lower if active is None
                   else assigned_lower & active)
            lcount, lidx = self._mask_plan(low)
            blocking = stage_sum("epb", low, self._num_stages,
                                 lcount, lidx)
            return float(job_additive + stage_additive + blocking)
        if equation == "eq5":
            blocking = self._eq5_blocking(active)[i]
            return float(job_additive + stage_additive + blocking)
        return float(job_additive + stage_additive)  # eq3 / eq6

    def removal_caps(self) -> np.ndarray:
        """``caps[i, p]``: sound bound on how much removing job ``p``
        from ``J_i``'s context (placing it below, or discarding it)
        can *lower* ``J_i``'s bound, for any OPA-compatible equation.

        The job-additive pair coefficient of every supported bound is
        at most ``2 m_{i,p} et_{i,p,1}`` (Eq. 3's double counting is
        the worst case; Eq. 6/10's ``W`` sums at most ``w <= 2m``
        terms of at most ``et1`` each; Eqs. 1/5 contribute less), and
        each stage-additive or blocking maximum can drop by at most
        the ``ep_{p,j}`` term that leaves it -- doubled so one matrix
        also covers admission-style discards, where ``p`` leaves the
        blocking sets too.  Eq. 10's downlink term only *grows* when
        ``p`` is placed below a candidate, which cannot lower the
        bound and needs no cap.

        This single definition feeds both excess-lower-bound pruning
        engines -- :func:`repro.core.opa.audsley_frontier` (via
        ``AudsleyLevelKernel.removal_caps``) and the online
        :func:`repro.online.incremental.incremental_admission` -- so
        the soundness argument lives in exactly one place.  Built once
        per analyzer, cached.
        """
        caps = self._removal_caps
        if caps is None:
            cache = self._cache
            caps = 2.0 * cache.m * cache.et1 + 2.0 * cache.ep.sum(axis=2)
            self._removal_caps = caps
        return caps

    def band_operands(self, equation: str) -> (
            "tuple[np.ndarray, np.ndarray, np.ndarray | None]"):
        """Operands for *exact-delta* maintenance of one level kernel.

        For the float-monotone equations every level value of candidate
        ``J_i`` decomposes as::

            bounds[i] = sum_{k in cols} delta[i, k] + self_add[i]
                        + sum_j max(0, max_{k in cols} planes[j, i, k])
                        [+ sum_j max(0, max_{k in act} block[j, i, k])]

        with ``cols = unassigned & active`` -- the paired kernel's own
        term assembly.  Removing one job ``p`` from ``cols`` therefore
        changes the job-additive term by exactly ``-delta[i, p]`` and
        each stage maximum by an exactly-representable difference of
        two maxima, which is what lets the online admission controller
        carry *certified bands* on every candidate's excess across an
        Audsley run instead of re-evaluating whole levels
        (:func:`repro.online.incremental.incremental_admission`).

        Returns ``(delta, planes, block_planes)``: the combined
        job-additive pair matrix (Eq. 1's arrive-after coefficients are
        pre-added), the stage-major interference planes summed over
        stages ``j < N-1``, and -- for Eq. 5 only, else ``None`` -- the
        stage-major blocking planes maximised over the *active* set
        (all ``N`` stages).  The constant ``self_add`` row terms are
        deliberately absent: bands are seeded from exact evaluations,
        so only the *changing* terms matter.

        Only defined for :data:`FLOAT_MONOTONE_EQUATIONS` on
        window-filtered analyzers (the premasked tensors bake the
        filter in).
        """
        if equation not in FLOAT_MONOTONE_EQUATIONS:
            raise ValueError(
                f"band operands are only defined for the float-monotone "
                f"equations {sorted(FLOAT_MONOTONE_EQUATIONS)}, "
                f"got {equation!r}")
        if not self._window_filter:
            raise ValueError(
                "band operands need a window-filtered analyzer (the "
                "premasked contribution tensors bake the filter in)")
        cached = self._band_memo.get(equation)
        if cached is not None:
            return cached
        contrib = self._contribution(equation)
        delta = contrib.C
        if contrib.extra is not None:
            delta = delta + contrib.extra
        last = self._num_stages - 1
        cache = self._cache
        if equation == "eq1":
            self._require_single_resource("eq1")
            planes = cache.pq_s[:last]
            block = None
        else:
            planes = cache.epq_s[:last]
            block = cache.epb_s if equation == "eq5" else None
        operands = (delta, planes, block)
        self._band_memo[equation] = operands
        return operands

    def _eq5_blocking(self, active: np.ndarray | None) -> np.ndarray:
        """Eq. 5's priority-*independent* blocking vector, memoised per
        ``active`` context: it never changes along an Audsley run, so
        every level after the first reads it back for free."""
        key = ("eq5", self._active_key(active))
        blocking = self._blocking_memo.get(key)
        if blocking is not None:
            self._cache_hits["blocking"] += 1
        else:
            self._cache_misses["blocking"] += 1
            everyone = (np.ones(self._n, dtype=bool) if active is None
                        else active)
            blocking = self._paired_stage_sum(
                "epb", _ALL_ROWS, everyone, self._num_stages)
            _evict_to_limit(self._blocking_memo, _BLOCKING_MEMO_LIMIT)
            self._blocking_memo[key] = blocking
        return blocking

    def _batch_dispatch(self, higher_of: np.ndarray,
                        lower_of: np.ndarray | None, equation: str,
                        active: np.ndarray | None, rows) -> np.ndarray:
        """Shared kernel dispatch of the full-batch and row-sliced
        entry points (``rows`` is an index array or ``_ALL_ROWS``)."""
        h = self._batch_masks(higher_of, active, rows)
        low = None
        if equation in LOWER_AWARE_EQUATIONS:
            low = self._batch_masks(lower_of, active, rows)
        if equation == "eq1":
            return self._batch_eq1(h, rows)
        if equation == "eq2":
            return self._batch_eq2(h, low, rows)
        if equation == "eq3":
            return self._batch_eq3(h, rows)
        if equation == "eq4":
            return self._batch_eq45(h, low, rows)
        if equation == "eq5":
            everyone = self._batch_masks(
                np.ones(h.shape, dtype=bool), active, rows)
            return self._batch_eq45(h, everyone, rows)
        if equation == "eq6":
            return self._batch_eq6(h, rows)
        return self._batch_eq10(h, low, rows)

    def _batch_eq1(self, h: np.ndarray, rows=_ALL_ROWS) -> np.ndarray:
        self._require_single_resource("eq1")
        q = h | self._eye[rows]
        arrivals = self._jobset.A
        arrive_after = h & (arrivals[None, :] > arrivals[rows][:, None])
        job_additive = (self._cache.t1[None, :] * q).sum(axis=1)
        job_additive += (self._cache.t2[None, :] * arrive_after).sum(axis=1)
        stage_additive = self._batch_stage_additive(
            q, self._jobset.P[None, :, :],
            slice(0, self._num_stages - 1))
        return job_additive + stage_additive

    def _batch_eq2(self, h: np.ndarray, low: np.ndarray,
                   rows=_ALL_ROWS) -> np.ndarray:
        self._require_single_resource("eq2")
        q = h | self._eye[rows]
        raw = self._jobset.P[None, :, :]
        job_additive = (self._cache.t1[None, :] * q).sum(axis=1)
        stage_additive = self._batch_stage_additive(
            q, raw, slice(0, self._num_stages - 1))
        blocking = self._batch_stage_additive(
            low, raw, slice(0, self._num_stages))
        return job_additive + stage_additive + blocking

    def _batch_eq3(self, h: np.ndarray, rows=_ALL_ROWS) -> np.ndarray:
        cache = self._cache
        q = h | self._eye[rows]
        job_additive = (2.0 * cache.m[rows] * cache.et1[rows] * h).sum(axis=1)
        job_additive += self._batch_self_term("eq3")[rows]
        stage_additive = self._batch_stage_additive(
            q, cache.ep[rows], slice(0, self._num_stages - 1))
        return job_additive + stage_additive

    def _batch_eq45(self, h: np.ndarray, blocking_set: np.ndarray,
                    rows=_ALL_ROWS) -> np.ndarray:
        cache = self._cache
        q = h | self._eye[rows]
        job_additive = (cache.m[rows] * cache.et1[rows] * h).sum(axis=1)
        job_additive += self._batch_self_term("eq4")[rows]
        stage_additive = self._batch_stage_additive(
            q, cache.ep[rows], slice(0, self._num_stages - 1))
        blocking = self._batch_stage_additive(
            blocking_set, cache.ep[rows], slice(0, self._num_stages))
        return job_additive + stage_additive + blocking

    def _batch_eq6(self, h: np.ndarray, rows=_ALL_ROWS) -> np.ndarray:
        cache = self._cache
        q = h | self._eye[rows]
        job_additive = (cache.W[rows] * h).sum(axis=1)
        if self._self_coefficient == "refined":
            job_additive += cache.W.diagonal()[rows]
        else:
            job_additive += self._batch_self_term("eq6")[rows]
        stage_additive = self._batch_stage_additive(
            q, cache.ep[rows], slice(0, self._num_stages - 1))
        return job_additive + stage_additive

    def _batch_eq10(self, h: np.ndarray, low: np.ndarray,
                    rows=_ALL_ROWS) -> np.ndarray:
        if self._num_stages != 3:
            raise ModelError(
                f"eq10 models the 3-stage edge pipeline, "
                f"system has {self._num_stages} stages")
        cache = self._cache
        q = h | self._eye[rows]
        job_additive = (cache.W[rows] * h).sum(axis=1)
        if self._self_coefficient == "refined":
            job_additive += cache.W.diagonal()[rows]
        else:
            job_additive += self._batch_self_term("eq10")[rows]
        ep = cache.ep[rows]
        uplink = np.where(q, ep[:, :, 0], 0.0).max(axis=1)
        server = np.where(q, ep[:, :, 1], 0.0).max(axis=1)
        downlink = np.where(low, ep[:, :, 2], 0.0).max(axis=1)
        return job_additive + uplink + server + downlink

    def delays_for_pairwise(self, x: np.ndarray, *,
                            equation: str = "eq6",
                            active: np.ndarray | None = None) -> np.ndarray:
        """End-to-end delay bounds of all jobs under a pairwise relation.

        ``x`` is an ``(n, n)`` boolean matrix with ``x[i, k]`` true iff
        ``J_i`` has higher priority than ``J_k``.  Only entries of
        conflicting pairs matter; the rest are ignored because their
        ``ep``/``W`` terms are zero.  Entries of jobs outside ``active``
        are returned as ``nan``.

        Evaluation is fully vectorised via :meth:`delay_bounds_all` and
        the result is memoised keyed on ``(equation, x, active)``.
        """
        x = np.asarray(x, dtype=bool)
        n = self._n
        if x.shape != (n, n):
            raise ValueError(f"x has shape {x.shape}, expected {(n, n)}")
        active = self._normalize_active(active)
        key = (equation, x.tobytes(), self._active_key(active))
        cached = self._batch_memo.get(key)
        if cached is not None:
            self._cache_hits["batches"] += 1
            return cached.copy()
        self._cache_misses["batches"] += 1
        delays = self.delay_bounds_all(
            x.T, x, equation=equation, active=active)
        _evict_to_limit(self._batch_memo, _BATCH_MEMO_LIMIT)
        self._batch_memo[key] = delays.copy()
        return delays

    def delays_for_ordering(self, priority: np.ndarray, *,
                            equation: str = "eq6",
                            active: np.ndarray | None = None) -> np.ndarray:
        """Delay bounds of all jobs under a total priority ordering.

        ``priority[i]`` is the priority value of ``J_i`` (lower value =
        higher priority, as in the paper).
        """
        priority = np.asarray(priority)
        x = priority[:, None] < priority[None, :]
        return self.delays_for_pairwise(x, equation=equation, active=active)
