"""Discrete-event MSMR pipeline simulator.

Executes a job set under fixed-priority dispatch (total-order,
per-stage, or pairwise policies; preemptive or non-preemptive per
stage), producing end-to-end delays and full execution traces.
:func:`validate_trace` re-checks a finished trace against the system
model independently of the simulator's own logic.
"""

from repro.sim.engine import PipelineSimulator, simulate
from repro.sim.metrics import SimulationResult
from repro.sim.policies import (
    DispatchPolicy,
    PairwisePolicy,
    PerStagePolicy,
    TotalOrderPolicy,
    make_policy,
)
from repro.sim.trace import ExecutionInterval, Trace
from repro.sim.validate import ValidationReport, Violation, validate_trace

__all__ = [
    "DispatchPolicy",
    "ExecutionInterval",
    "PairwisePolicy",
    "PerStagePolicy",
    "PipelineSimulator",
    "SimulationResult",
    "Trace",
    "TotalOrderPolicy",
    "ValidationReport",
    "Violation",
    "make_policy",
    "simulate",
    "validate_trace",
]
