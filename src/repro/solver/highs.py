"""HiGHS backend via :func:`scipy.optimize.milp`.

The paper used Gurobi for the OPT ILP; HiGHS is the drop-in complete
solver available offline.  Any complete MILP solver yields the same
accept/reject answer on a feasibility problem, which is all the
experiments need.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.exceptions import SolverError
from repro.solver.milp import MILPProblem
from repro.solver.result import SolveResult, SolveStatus

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.NODE_LIMIT,   # iteration / time limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_highs(problem: MILPProblem, *,
                time_limit: float | None = None,
                node_limit: int | None = None,
                mip_rel_gap: float | None = None) -> SolveResult:
    """Solve a :class:`MILPProblem` with HiGHS.

    Parameters mirror ``scipy.optimize.milp`` options; ``None`` leaves
    the backend default.
    """
    constraints = []
    if problem.a_ub.shape[0]:
        constraints.append(LinearConstraint(
            problem.a_ub, -np.inf, problem.b_ub))
    if problem.a_eq.shape[0]:
        constraints.append(LinearConstraint(
            problem.a_eq, problem.b_eq, problem.b_eq))
    options: dict = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if node_limit is not None:
        options["node_limit"] = int(node_limit)
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = float(mip_rel_gap)
    try:
        result = milp(
            c=problem.objective,
            constraints=constraints,
            integrality=problem.integrality,
            bounds=Bounds(problem.lower, problem.upper),
            options=options or None,
        )
    except Exception as exc:  # pragma: no cover - scipy internal errors
        raise SolverError(f"HiGHS failed: {exc}") from exc

    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    x = None
    objective = None
    if result.x is not None and status is SolveStatus.OPTIMAL:
        x = np.asarray(result.x, dtype=float)
        objective = float(result.fun)
    stats = {"backend": "highs", "message": result.message,
             "raw_status": int(result.status)}
    return SolveResult(status=status, x=x, objective=objective, stats=stats)
