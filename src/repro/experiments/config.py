"""Experiment grids: the exact sweeps of Figure 4.

Every figure varies one workload knob around the paper's defaults
(``beta = 0.15``, ``[h1, h2, h3] = [0.05, 0.05, 0.01]``,
``gamma = 0.7``; 25 APs, 20 servers, 100 jobs).  ``ExperimentConfig``
bundles the sweep with the number of seeded test cases per point.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.workload.edge import EdgeWorkloadConfig

#: Figure 4a sweep: heaviness threshold.
BETA_VALUES = (0.05, 0.10, 0.15, 0.20)

#: Figure 4b sweep: per-stage heavy fractions [h1, h2, h3].
HEAVY_FRACTION_VALUES = (
    (0.01, 0.01, 0.01),
    (0.05, 0.05, 0.05),
    (0.10, 0.10, 0.01),
    (0.01, 0.15, 0.01),
)

#: Figure 4c sweep: system heaviness bound.
GAMMA_VALUES = (0.6, 0.7, 0.8, 0.9)

#: Figure 4d settings: admission control under high/low load.
ADMISSION_SETTINGS = (
    ("beta=0.01", {"beta": 0.01, "light_min": 0.002}),
    ("beta=0.2", {"beta": 0.2}),
    ("h=[.01,.01,.01]", {"heavy_fractions": (0.01, 0.01, 0.01)}),
    ("h=[.1,.1,.01]", {"heavy_fractions": (0.10, 0.10, 0.01)}),
    ("gamma=0.6", {"gamma": 0.6}),
    ("gamma=0.9", {"gamma": 0.9}),
)

#: Admission-controller approaches of Figure 4d.
ADMISSION_APPROACHES = ("opdca", "dmr", "dm")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip() in ("1", "true", "yes")


def full_scale() -> bool:
    """True when paper-scale runs were requested via ``REPRO_FULL=1``."""
    return _env_flag("REPRO_FULL")


def tiny_scale() -> bool:
    """True when a smoke-test run was requested via ``REPRO_TINY=1``
    (used by CI to exercise the full CLI path in seconds)."""
    return _env_flag("REPRO_TINY")


@dataclass(frozen=True)
class ExperimentConfig:
    """How much work each figure driver performs, and with how many
    worker processes.

    ``cases`` seeded test cases are generated per sweep point with
    seeds ``seed0 .. seed0 + cases - 1``; the acceptance ratio is the
    fraction accepted.  ``n_workers > 1`` shards the cases across a
    process pool (results are identical for any worker count; see
    :mod:`repro.experiments.parallel`).
    """

    cases: int = 50
    seed0: int = 0
    base: EdgeWorkloadConfig = field(default_factory=EdgeWorkloadConfig)
    equation: str = "eq10"
    opt_backend: str = "highs"
    n_workers: int = 1
    #: Root of a persistent result store (``None`` disables caching).
    #: Sweeps consult it before evaluating and checkpoint fresh
    #: results into it, making every run resumable and incremental.
    cache_dir: "str | None" = None

    def open_store(self):
        """A :class:`repro.store.ResultStore` at ``cache_dir``
        (or ``None`` when caching is disabled)."""
        if not self.cache_dir:
            return None
        from repro.store import ResultStore

        return ResultStore(self.cache_dir)

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Reduced-but-shape-preserving configuration for CI/benchmarks."""
        return cls(cases=10)

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """Paper-scale configuration (slower)."""
        return cls(cases=100)

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Smoke-test configuration: a shrunken workload so every CLI
        subcommand finishes in seconds (CI uses this via REPRO_TINY)."""
        return cls(cases=2, base=EdgeWorkloadConfig(
            num_jobs=10, num_aps=4, num_servers=3))

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        """``paper()`` with ``REPRO_FULL=1``, ``tiny()`` with
        ``REPRO_TINY=1``, ``quick()`` otherwise; ``REPRO_JOBS`` sets
        the worker count and ``REPRO_CACHE_DIR`` the result store."""
        from repro.experiments.parallel import default_workers

        if tiny_scale():
            config = cls.tiny()
        elif full_scale():
            config = cls.paper()
        else:
            config = cls.quick()
        workers = default_workers()
        if workers != config.n_workers:
            config = replace(config, n_workers=workers)
        cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
        if cache_dir:
            config = replace(config, cache_dir=cache_dir)
        return config
