"""ResultStore mechanics: round-trips, sharding, concurrency, gc.

The atomicity contract: any number of processes may append to the
same store concurrently and every completed ``put`` survives intact
(whole lines, never interleaved bytes).
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

from repro.store import ResultStore, is_store
from repro.store.store import SHARD_PREFIX


def _key(index: int) -> str:
    return f"{index % 256:02x}{'ab' * 31}"


def test_round_trip_and_reopen(tmp_path):
    store = ResultStore(tmp_path / "s")
    store.put("ff" * 32, {"value": [1, 0.1 + 0.2, "x"]}, kind="call")
    assert store.get("ff" * 32) == {"value": [1, 0.1 + 0.2, "x"]}
    reopened = ResultStore(tmp_path / "s")
    assert reopened.get("ff" * 32) == {"value": [1, 0.1 + 0.2, "x"]}
    assert "ff" * 32 in reopened
    assert len(reopened) == 1
    assert is_store(tmp_path / "s")
    assert not is_store(tmp_path)


def test_miss_returns_none_and_counts(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get("00" * 32) is None
    assert store.counters.misses == 1
    assert store.counters.hits == 0


def test_sharding_by_key_prefix(tmp_path):
    store = ResultStore(tmp_path)
    for index in range(4):
        store.put(_key(index), {"i": index})
    shards = sorted(p.name for p in (tmp_path / "shards").iterdir())
    assert shards == ["00.jsonl", "01.jsonl", "02.jsonl", "03.jsonl"]
    assert store.keys() == sorted(_key(i) for i in range(4))
    assert all(len(k[:SHARD_PREFIX]) == 2 for k in store.keys())


def test_last_write_wins(tmp_path):
    store = ResultStore(tmp_path)
    store.put("aa" * 32, {"v": 1})
    store.put("aa" * 32, {"v": 2})
    assert store.get("aa" * 32) == {"v": 2}
    assert ResultStore(tmp_path).get("aa" * 32) == {"v": 2}


def test_stale_salt_records_are_invisible(tmp_path):
    old = ResultStore(tmp_path, salt="old-salt")
    old.put("aa" * 32, {"v": 1})
    new = ResultStore(tmp_path, salt="new-salt")
    assert new.get("aa" * 32) is None
    stats = new.stats()
    assert stats.records == 1
    assert stats.stale == 1
    assert stats.entries == 0


def test_torn_final_line_is_tolerated(tmp_path):
    store = ResultStore(tmp_path)
    store.put("aa" * 32, {"v": 1})
    shard = tmp_path / "shards" / "aa.jsonl"
    with shard.open("a", encoding="utf-8") as handle:
        handle.write('{"key": "bb", "salt": "trunc')  # killed writer
    reopened = ResultStore(tmp_path)
    assert reopened.get("aa" * 32) == {"v": 1}
    assert reopened.stats().corrupt == 1


def test_put_after_torn_line_starts_a_fresh_line(tmp_path):
    """A record appended after a torn final line must not be
    concatenated onto it (the resume-after-kill write path)."""
    store = ResultStore(tmp_path)
    store.put("aa" * 32, {"v": 1})
    shard = tmp_path / "shards" / "ab.jsonl"
    shard.write_text('{"key": "ab", "salt": "torn-partial-rec')
    appender = ResultStore(tmp_path)
    appender.put("ab" * 32, {"v": 2})
    reopened = ResultStore(tmp_path)
    assert reopened.get("ab" * 32) == {"v": 2}
    assert reopened.stats().corrupt == 1  # only the torn line is lost


def test_gc_compacts_stale_corrupt_and_duplicates(tmp_path):
    old = ResultStore(tmp_path, salt="old-salt")
    old.put("aa" * 32, {"v": 0})
    store = ResultStore(tmp_path)
    store.put("aa" * 32, {"v": 1})
    store.put("aa" * 32, {"v": 2})
    shard = tmp_path / "shards" / "aa.jsonl"
    with shard.open("a", encoding="utf-8") as handle:
        handle.write("not json\n")
    kept, dropped = store.gc()
    assert (kept, dropped) == (1, 3)
    assert store.get("aa" * 32) == {"v": 2}
    stats = ResultStore(tmp_path).stats()
    assert stats.records == 1
    assert stats.stale == 0
    assert stats.corrupt == 0


def test_gc_unlinks_fully_stale_shards(tmp_path):
    old = ResultStore(tmp_path, salt="old-salt")
    old.put("aa" * 32, {"v": 0})
    new = ResultStore(tmp_path, salt="new-salt")
    kept, dropped = new.gc()
    assert (kept, dropped) == (0, 1)
    assert not (tmp_path / "shards" / "aa.jsonl").exists()


def test_export_is_sorted_and_complete(tmp_path):
    store = ResultStore(tmp_path / "s")
    for index in range(5):
        store.put(_key(index), {"i": index})
    out = tmp_path / "dump.jsonl"
    assert store.export(out) == 5
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert [r["key"] for r in lines] == sorted(_key(i) for i in range(5))
    assert {r["payload"]["i"] for r in lines} == set(range(5))


def _hammer(root: str, writer: int, count: int) -> int:
    """Worker: append ``count`` records to a shared store."""
    store = ResultStore(root)
    for index in range(count):
        key = f"{index % 4:02x}" + f"{writer:02x}{index:04x}" + "c" * 54
        store.put(key, {"writer": writer, "index": index,
                        "pad": "x" * 200})
    return count


def test_concurrent_writers_never_corrupt(tmp_path):
    """8 processes x 50 appends into 4 shared shards: every record
    must come back whole, and no line may be torn or interleaved."""
    root = str(tmp_path / "shared")
    ResultStore(root)  # create the marker up front
    with ProcessPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(_hammer, root, writer, 50)
                   for writer in range(8)]
        assert sum(f.result() for f in futures) == 400
    store = ResultStore(root)
    assert store.stats().corrupt == 0
    assert len(store) == 400
    seen = set()
    for key in store.keys():
        payload = store.get(key)
        assert payload["pad"] == "x" * 200
        seen.add((payload["writer"], payload["index"]))
    assert seen == {(w, i) for w in range(8) for i in range(50)}
