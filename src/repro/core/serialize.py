"""JSON (de)serialisation of systems, jobs and job sets.

A release-quality library needs a way to save an instance and load it
back -- for bug reports, regression corpora, and exchanging test cases
with other tools.  The format is a single JSON object:

.. code-block:: json

    {
      "format": "repro-jobset",
      "version": 1,
      "stages": [{"num_resources": 2, "preemptive": true,
                  "name": "uplink"}, ...],
      "jobs": [{"processing": [5, 7, 15], "deadline": 60,
                "resources": [0, 1, 1], "arrival": 0.0,
                "name": "J1"}, ...]
    }

Round-tripping is exact (floats are emitted with ``repr`` precision),
and loading validates through the normal model constructors, so a
corrupt file fails with the usual :class:`ModelError` messages.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from repro.core.exceptions import ModelError
from repro.core.job import Job
from repro.core.system import JobSet, MSMRSystem, Stage

FORMAT_NAME = "repro-jobset"
FORMAT_VERSION = 1


def to_jsonable(obj):
    """Reduce ``obj`` to plain JSON-representable types, recursively.

    The canonical reduction behind the content-addressed result store
    (:mod:`repro.store`): dataclasses become ``{"__type__": name,
    **fields}`` mappings, tuples become lists, numpy scalars/arrays
    become Python numbers/lists, and everything else must already be a
    JSON scalar.  Floats pass through unchanged -- ``json`` emits them
    with ``repr`` precision, which round-trips bitwise.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        payload = {"__type__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            payload[field.name] = to_jsonable(getattr(obj, field.name))
        return payload
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value)
                for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(value) for value in obj]
    if isinstance(obj, np.ndarray):
        return [to_jsonable(value) for value in obj.tolist()]
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if obj is None or isinstance(obj, str):
        return obj
    raise ModelError(
        f"cannot canonicalise {type(obj).__name__} for JSON: {obj!r}")


def canonical_dumps(obj) -> str:
    """Deterministic compact JSON of :func:`to_jsonable` output.

    Keys are sorted and separators fixed, so equal values hash equally
    across processes and Python versions (the substrate of
    :func:`repro.store.spec_hash`).
    """
    return json.dumps(to_jsonable(obj), sort_keys=True,
                      separators=(",", ":"))


def system_to_dict(system: MSMRSystem) -> dict:
    """Plain-dict form of a system."""
    return {
        "stages": [
            {"num_resources": stage.num_resources,
             "preemptive": stage.preemptive,
             "name": stage.name}
            for stage in system.stages
        ]
    }


def system_from_dict(data: dict) -> MSMRSystem:
    """Rebuild a system from :func:`system_to_dict` output."""
    try:
        stages = [
            Stage(num_resources=int(entry["num_resources"]),
                  preemptive=bool(entry.get("preemptive", True)),
                  name=entry.get("name"))
            for entry in data["stages"]
        ]
    except (KeyError, TypeError) as error:
        raise ModelError(f"malformed system payload: {error}") from error
    return MSMRSystem(stages)


def job_to_dict(job: Job) -> dict:
    """Plain-dict form of one job."""
    return {
        "processing": list(job.processing),
        "deadline": job.deadline,
        "resources": list(job.resources),
        "arrival": job.arrival,
        "name": job.name,
    }


def job_from_dict(data: dict) -> Job:
    """Rebuild a job from :func:`job_to_dict` output."""
    try:
        return Job(processing=tuple(data["processing"]),
                   deadline=data["deadline"],
                   resources=tuple(data["resources"]),
                   arrival=data.get("arrival", 0.0),
                   name=data.get("name"))
    except (KeyError, TypeError) as error:
        raise ModelError(f"malformed job payload: {error}") from error


def jobset_to_dict(jobset: JobSet) -> dict:
    """Plain-dict form of a whole job set (system + jobs)."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        **system_to_dict(jobset.system),
        "jobs": [job_to_dict(job) for job in jobset.jobs],
    }


def jobset_from_dict(data: dict) -> JobSet:
    """Rebuild a job set, validating format markers and the model."""
    if data.get("format") != FORMAT_NAME:
        raise ModelError(
            f"not a {FORMAT_NAME} payload (format="
            f"{data.get('format')!r})")
    if int(data.get("version", -1)) != FORMAT_VERSION:
        raise ModelError(
            f"unsupported {FORMAT_NAME} version {data.get('version')!r};"
            f" this library reads version {FORMAT_VERSION}")
    system = system_from_dict(data)
    if "jobs" not in data:
        raise ModelError("payload has no 'jobs' array")
    jobs = [job_from_dict(entry) for entry in data["jobs"]]
    return JobSet(system, jobs)


def dumps(jobset: JobSet, *, indent: int | None = 2) -> str:
    """Serialise a job set to a JSON string."""
    return json.dumps(jobset_to_dict(jobset), indent=indent)


def loads(text: str) -> JobSet:
    """Load a job set from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ModelError(f"invalid JSON: {error}") from error
    if not isinstance(data, dict):
        raise ModelError(
            f"expected a JSON object, got {type(data).__name__}")
    return jobset_from_dict(data)


def save(jobset: JobSet, path) -> None:
    """Write a job set to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(jobset))
        handle.write("\n")


def load(path) -> JobSet:
    """Read a job set from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
