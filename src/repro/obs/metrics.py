"""Process-global metrics registry: counters, gauges, histograms.

Zero-dependency (stdlib only) so every layer of the stack — the
paired kernel, the online cells, the result store, the admission
service — can record telemetry without import cycles or optional
extras.  Three instrument kinds:

``Counter``
    Monotonic float, ``inc(n)`` only.
``Gauge``
    Point-in-time float, ``set(v)`` / ``inc(n)`` / ``dec(n)``.
``Histogram``
    Fixed log-spaced buckets (1e-6 .. 10 s, 8 buckets per decade)
    with exact within-bucket geometric interpolation for quantiles.
    This supersedes the raw-list ``latency_percentiles`` scan on hot
    paths: observation is O(log buckets), quantiles are O(buckets),
    and memory is constant regardless of event count.

Each instrument may declare ``labelnames``; ``labels(**kv)`` returns
a child keyed by the label values.  The registry renders both a
plain-dict :meth:`Registry.snapshot` and Prometheus text exposition
via :meth:`Registry.render_prometheus`.

``null_instrumentation()`` flips a module flag that turns every
``inc``/``set``/``observe`` into an early return.  The overhead
benchmark uses it to approximate physically uninstrumented code, so
the <5% gate measures the *disabled* cost of the telemetry spine.
"""

from __future__ import annotations

import bisect
import math
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "default_buckets",
    "get_registry",
    "null_instrumentation",
]

# Module-wide instrumentation switch.  When False, every mutation on
# every instrument early-returns; reads still work.
_enabled = True


@contextmanager
def null_instrumentation() -> Iterator[None]:
    """Disable all metric mutations inside the ``with`` block."""
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


def _label_key(
    labelnames: Sequence[str], labels: Dict[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {sorted(labelnames)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Instrument:
    """Shared parent/child plumbing for all instrument kinds."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "_Instrument"] = {}

    def labels(self, **labels: str) -> "_Instrument":
        if not self.labelnames:
            raise ValueError(f"{self.name} declares no labels")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.help_text)
                self._children[key] = child
        return child

    def _child_items(
        self,
    ) -> List[Tuple[Tuple[str, ...], "_Instrument"]]:
        with self._lock:
            return sorted(self._children.items())


class Counter(_Instrument):
    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Instrument):
    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


def default_buckets() -> List[float]:
    """Log-spaced latency buckets: 1e-6 .. 10 s, 8 per decade."""
    decades = 7  # 1e-6 up to 1e1
    per_decade = 8
    bounds = [
        10.0 ** (-6 + i / per_decade)
        for i in range(decades * per_decade + 1)
    ]
    return bounds


class Histogram(_Instrument):
    """Fixed-bucket histogram with geometric quantile interpolation.

    ``quantile(q)`` locates the bucket holding the q-th observation
    and interpolates geometrically inside it (the buckets are
    log-spaced, so geometric interpolation is exact for log-uniform
    mass within a bucket and within one bucket width of the true
    order statistic for anything else).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = list(buckets) if buckets is not None else \
            default_buckets()
        if bounds != sorted(bounds):
            raise ValueError("bucket bounds must be sorted")
        self.bounds = bounds
        # counts[i] observations fall in (bounds[i-1], bounds[i]];
        # counts[0] is <= bounds[0], counts[-1] is the +Inf overflow.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def labels(self, **labels: str) -> "Histogram":
        if not self.labelnames:
            raise ValueError(f"{self.name} declares no labels")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Histogram(
                    self.name, self.help_text, buckets=self.bounds
                )
                self._children[key] = child
        return child  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Interpolated q-th quantile (q in [0, 1]) in seconds."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile fraction must be in [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            # Rank of the order statistic numpy's linear method
            # targets: q * (n - 1) in zero-based terms.
            rank = q * (total - 1)
            target = rank + 1.0  # one-based fractional rank
            cumulative = 0
            for index, count in enumerate(self._counts):
                if count == 0:
                    continue
                if cumulative + count >= target:
                    lo = (
                        self.bounds[index - 1]
                        if index > 0
                        else min(self._min, self.bounds[0])
                    )
                    if index < len(self.bounds):
                        hi = self.bounds[index]
                    else:
                        hi = self._max
                    lo = max(lo, self._min)
                    hi = min(hi, self._max)
                    if hi <= lo:
                        return lo
                    frac = (target - cumulative) / count
                    if lo > 0:
                        # Geometric interpolation across the
                        # log-spaced bucket.
                        return lo * (hi / lo) ** frac
                    return lo + (hi - lo) * frac
                cumulative += count
            return self._max


class Registry:
    """Thread-safe instrument registry with Prometheus exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _register(
        self, factory, name: str, help_text: str, **kwargs
    ) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, factory):
                    raise ValueError(
                        f"{name} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            instrument = factory(name, help_text, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
    ) -> Counter:
        return self._register(
            Counter, name, help_text, labelnames=labelnames
        )

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        return self._register(
            Gauge, name, help_text, labelnames=labelnames
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._register(
            Histogram,
            name,
            help_text,
            labelnames=labelnames,
            buckets=buckets,
        )

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def unregister(self, name: str) -> None:
        with self._lock:
            self._instruments.pop(name, None)

    def reset(self) -> None:
        """Drop every instrument (test isolation hook)."""
        with self._lock:
            self._instruments.clear()

    def _sorted_instruments(self) -> List[_Instrument]:
        with self._lock:
            return [
                self._instruments[name]
                for name in sorted(self._instruments)
            ]

    def snapshot(self) -> Dict[str, dict]:
        """Plain-dict view of every instrument and child."""
        out: Dict[str, dict] = {}
        for instrument in self._sorted_instruments():
            entry: Dict[str, object] = {
                "type": instrument.kind,
                "help": instrument.help_text,
            }
            if instrument.labelnames:
                entry["labelnames"] = list(instrument.labelnames)
                entry["children"] = {
                    "|".join(key): _scalar_or_hist(child)
                    for key, child in instrument._child_items()
                }
            else:
                entry["value"] = _scalar_or_hist(instrument)
            out[instrument.name] = entry
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for instrument in self._sorted_instruments():
            if instrument.help_text:
                lines.append(
                    f"# HELP {instrument.name} "
                    f"{_escape_help(instrument.help_text)}"
                )
            lines.append(
                f"# TYPE {instrument.name} {instrument.kind}"
            )
            if instrument.labelnames:
                for key, child in instrument._child_items():
                    labels = dict(zip(instrument.labelnames, key))
                    lines.extend(_render_one(child, labels))
            else:
                lines.extend(_render_one(instrument, {}))
        return "\n".join(lines) + "\n"


def _scalar_or_hist(instrument: _Instrument):
    if isinstance(instrument, Histogram):
        return {
            "count": instrument.count,
            "sum": instrument.sum,
            "p50": instrument.quantile(0.50),
            "p99": instrument.quantile(0.99),
        }
    return instrument._value  # type: ignore[attr-defined]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_one(
    instrument: _Instrument, labels: Dict[str, str]
) -> List[str]:
    name = instrument.name
    if isinstance(instrument, Histogram):
        lines = []
        cumulative = 0
        with instrument._lock:
            counts = list(instrument._counts)
            total = instrument._count
            total_sum = instrument._sum
        for bound, count in zip(instrument.bounds, counts):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(bound)
            lines.append(
                f"{name}_bucket{_format_labels(bucket_labels)} "
                f"{cumulative}"
            )
        bucket_labels = dict(labels)
        bucket_labels["le"] = "+Inf"
        lines.append(
            f"{name}_bucket{_format_labels(bucket_labels)} {total}"
        )
        label_text = _format_labels(labels)
        lines.append(f"{name}_sum{label_text} {repr(total_sum)}")
        lines.append(f"{name}_count{label_text} {total}")
        return lines
    value = instrument._value  # type: ignore[attr-defined]
    return [
        f"{name}{_format_labels(labels)} {_format_value(value)}"
    ]


_registry = Registry()


def get_registry() -> Registry:
    """The process-global registry every layer records into."""
    return _registry
