"""Structured per-request tracing for the admission service.

Every request entering the service carries a *trace id*: either the
client's own (an ``X-Trace-Id`` header or a ``trace_id`` body field,
propagated verbatim) or one the service mints.  The id travels through
the batching queue into the decision path, is stamped onto the
response, and every hop appends a structured span to a bounded
in-memory :class:`TraceLog` queryable over ``GET /v1/traces/{id}``.

This is deliberately a ring buffer, not a durable store: traces are a
debugging instrument for the live process, while the durable record
of decisions is the tenant journal (:mod:`repro.serve.snapshot`).
"""

from __future__ import annotations

import itertools
import re
from collections import OrderedDict

#: Client-supplied trace ids must match this (defence against log
#: injection / unbounded keys); longer or stranger ids are replaced.
TRACE_ID_PATTERN = re.compile(r"^[A-Za-z0-9._:-]{1,64}$")

#: Default bound on distinct traces kept (oldest evicted first).
TRACE_LOG_CAPACITY = 1024

#: Spans kept per trace (a trace is a handful of hops; runaway
#: clients reusing one id for a whole load test stay bounded).
SPANS_PER_TRACE = 64

_counter = itertools.count(1)


def mint_trace_id(prefix: str = "t") -> str:
    """A fresh process-unique trace id (``t-000001``-style)."""
    return f"{prefix}-{next(_counter):06d}"


def coerce_trace_id(candidate) -> "tuple[str, bool]":
    """``(trace_id, minted)``: the validated client id, or a fresh
    one when the candidate is absent or malformed."""
    if isinstance(candidate, str) and TRACE_ID_PATTERN.match(candidate):
        return candidate, False
    return mint_trace_id(), True


class TraceLog:
    """Bounded per-trace span log (insertion-ordered, oldest out)."""

    def __init__(self, *, capacity: int = TRACE_LOG_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._traces: "OrderedDict[str, list[dict]]" = OrderedDict()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._traces)

    def record(self, trace_id: str, stage: str, **detail) -> None:
        """Append one span ``{"stage", ...detail}`` to a trace."""
        spans = self._traces.get(trace_id)
        if spans is None:
            while len(self._traces) >= self._capacity:
                self._traces.popitem(last=False)
                self.dropped += 1
            spans = self._traces[trace_id] = []
        if len(spans) < SPANS_PER_TRACE:
            spans.append({"stage": stage, **detail})

    def get(self, trace_id: str) -> "list[dict] | None":
        """The spans of one trace, or ``None`` if unknown/evicted."""
        spans = self._traces.get(trace_id)
        return list(spans) if spans is not None else None

    def stats(self) -> dict:
        return {
            "traces": len(self._traces),
            "capacity": self._capacity,
            "dropped_traces": self.dropped,
        }
