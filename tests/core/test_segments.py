"""Unit tests for the segment algebra (Section II definitions)."""

import numpy as np
import pytest

from repro.core.job import Job
from repro.core.segments import (
    PairSegments,
    SegmentCache,
    pair_segments,
    segments_of,
)
from repro.core.system import JobSet, MSMRSystem, Stage


class TestSegmentsOf:
    def test_empty(self):
        assert segments_of([]) == []

    def test_no_shared_stage(self):
        assert segments_of([False, False]) == []

    def test_all_shared(self):
        assert segments_of([True, True, True]) == [(0, 3)]

    def test_single_stage_segments(self):
        assert segments_of([True, False, True]) == [(0, 1), (2, 1)]

    def test_mixed(self):
        shared = [True, True, False, True, False, True, True, True]
        assert segments_of(shared) == [(0, 2), (3, 1), (5, 3)]

    def test_trailing_segment_closed(self):
        assert segments_of([False, True]) == [(1, 1)]


class TestPairSegments:
    def test_counts_match_paper_definitions(self):
        profile = PairSegments(segments=((0, 1), (2, 2), (5, 1)))
        assert profile.m == 3
        assert profile.u == 2      # two single-stage segments
        assert profile.v == 1      # one multi-stage segment
        assert profile.w == 2 + 2 * 1

    def test_shared_stages(self):
        profile = PairSegments(segments=((1, 2), (4, 1)))
        assert profile.shared_stages == (1, 2, 4)

    def test_empty_profile(self):
        profile = PairSegments(segments=())
        assert profile.m == profile.u == profile.v == profile.w == 0


def figure1e_like_jobset():
    """Two jobs sharing stages {0, 1} and {3} out of 4 (m = 2, like
    Figure 1(e) of the paper)."""
    system = MSMRSystem([Stage(2)] * 4)
    jobs = [
        Job(processing=(4, 5, 6, 7), deadline=100,
            resources=(0, 0, 0, 0)),
        Job(processing=(3, 2, 9, 8), deadline=100,
            resources=(0, 0, 1, 0)),
    ]
    return JobSet(system, jobs)


class TestPairSegmentsFromJobset:
    def test_figure1e_profile(self):
        jobset = figure1e_like_jobset()
        profile = pair_segments(jobset, 0, 1)
        assert profile.segments == ((0, 2), (3, 1))
        assert profile.m == 2
        assert profile.u == 1
        assert profile.v == 1
        assert profile.w == 3

    def test_self_pair_is_one_full_segment(self):
        jobset = figure1e_like_jobset()
        profile = pair_segments(jobset, 0, 0)
        assert profile.segments == ((0, 4),)
        assert profile.m == 1


class TestSegmentCache:
    @pytest.fixture
    def cache(self):
        return SegmentCache(figure1e_like_jobset())

    def test_ep_masks_unshared_stages(self, cache):
        # Relative to J0, J1's stage-2 time is hidden (different
        # resource there).
        assert np.array_equal(cache.ep[0, 1], [3, 2, 0, 8])
        assert np.array_equal(cache.ep[1, 0], [4, 5, 0, 7])
        # Self rows expose everything.
        assert np.array_equal(cache.ep[0, 0], [4, 5, 6, 7])

    def test_et_sorted_descending(self, cache):
        assert np.array_equal(cache.et_sorted[0, 1], [8, 3, 2, 0])
        assert cache.et1[0, 1] == 8
        assert cache.et2[0, 1] == 3

    def test_segment_count_matrices(self, cache):
        assert cache.m[0, 1] == 2
        assert cache.u[0, 1] == 1
        assert cache.v[0, 1] == 1
        assert cache.w[0, 1] == 3
        assert cache.m[0, 0] == 1  # raw self profile

    def test_job_additive_weights(self, cache):
        # W[0, 1]: sum of the w=3 largest shared times of J1 w.r.t. J0.
        assert cache.W[0, 1] == 8 + 3 + 2
        # Diagonal follows the refined convention w_ii = 1 -> t_{i,1}.
        assert cache.W[0, 0] == 7
        assert cache.W[1, 1] == 9

    def test_global_t_ranks(self, cache):
        assert cache.t1[0] == 7
        assert cache.t2[0] == 6
        assert cache.t1[1] == 9

    def test_top_et_sum(self, cache):
        assert cache.top_et_sum(0, 1, 0) == 0.0
        assert cache.top_et_sum(0, 1, 1) == 8.0
        assert cache.top_et_sum(0, 1, 2) == 11.0
        # Counts beyond N clamp to the full sum.
        assert cache.top_et_sum(0, 1, 99) == 13.0

    def test_consistency_with_pair_segments(self, cache):
        jobset = cache.jobset
        for i in range(jobset.num_jobs):
            for k in range(jobset.num_jobs):
                profile = pair_segments(jobset, i, k)
                assert cache.m[i, k] == profile.m
                assert cache.u[i, k] == profile.u
                assert cache.v[i, k] == profile.v
                assert cache.w[i, k] == profile.w


class TestSegmentCacheEdgeShapes:
    def test_single_stage_system(self):
        jobset = JobSet.single_resource(processing=[(3,), (4,)],
                                        deadlines=[10, 10])
        cache = SegmentCache(jobset)
        assert cache.m[0, 1] == 1
        assert cache.u[0, 1] == 1
        assert cache.v[0, 1] == 0
        assert cache.w[0, 1] == 1
        assert cache.et2[0, 1] == 0.0

    def test_disjoint_jobs_have_zero_profiles(self):
        system = MSMRSystem([Stage(2), Stage(2)])
        jobs = [
            Job(processing=(1, 2), deadline=10, resources=(0, 0)),
            Job(processing=(3, 4), deadline=10, resources=(1, 1)),
        ]
        cache = SegmentCache(JobSet(system, jobs))
        assert cache.m[0, 1] == 0
        assert cache.w[0, 1] == 0
        assert cache.W[0, 1] == 0.0
        assert (cache.ep[0, 1] == 0).all()

    def test_alternating_stages_all_single_segments(self):
        system = MSMRSystem([Stage(2)] * 5)
        jobs = [
            Job(processing=(1,) * 5, deadline=10,
                resources=(0, 0, 0, 0, 0)),
            Job(processing=(1,) * 5, deadline=10,
                resources=(0, 1, 0, 1, 0)),
        ]
        cache = SegmentCache(JobSet(system, jobs))
        assert cache.m[0, 1] == 3
        assert cache.u[0, 1] == 3
        assert cache.v[0, 1] == 0
        assert cache.w[0, 1] == 3
