"""Admit-path batching and overload shedding for the service.

All mutating tenant events (``/v1/admit``, ``/v1/depart``) funnel
through one :class:`EventBatcher`: a bounded FIFO queue drained by a
single consumer task.  The consumer wakes once per pending burst and
drains up to ``max_batch`` entries before yielding to the event loop,
so under concurrent load the per-event asyncio overhead (task wakeups,
queue handoffs) is amortised across the batch -- the coalescing that
lets the service sustain the benchmark gate's events/sec floor.

Single-consumer draining also *serialises* engine calls without locks:
events of one tenant are processed in exactly arrival order, which is
what makes served decisions bitwise-identical to an offline replay.

Entries may additionally opt into *slate grouping* (see
:meth:`EventBatcher.submit`): a run of queue-adjacent entries sharing
one slate key -- in practice, arrivals of one tenant that piled up in
the queue together -- is served by a single coalesced engine decision
(:meth:`repro.serve.tenants.Tenant.process_slate`) instead of one
decision per event.  Grouping never reorders anything: it only fuses
events the consumer was about to process back-to-back anyway, and the
slate decision path is property-tested identical to sequential
processing, so served decisions stay bitwise-reproducible.

Overload policy (load shedding, bounded memory):

* queue full -> the request is shed immediately with HTTP 503 and a
  ``Retry-After`` hint; nothing blocks.
* an entry older than ``queue_timeout`` seconds when the consumer
  reaches it -> shed with 503 (its deadline already passed; doing the
  work would only add latency to everyone behind it).

Clients (e.g. the bench load generator) retry 503s with exponential
backoff; ``shed_ratio`` is exported by ``/metrics``.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass

#: Default bound on queued (not yet processed) events.
QUEUE_LIMIT = 1024

#: Default max events drained per consumer wakeup.
MAX_BATCH = 64

#: Default seconds an entry may wait before it is shed as stale.
QUEUE_TIMEOUT = 2.0


class OverloadError(RuntimeError):
    """The service shed this request (maps to HTTP 503)."""


@dataclass
class BatcherStats:
    """Counters the batcher exports through ``/metrics``."""

    enqueued: int = 0
    processed: int = 0
    shed_full: int = 0
    shed_stale: int = 0
    failed: int = 0
    batches: int = 0
    max_batch_seen: int = 0
    #: Slate-grouped drains (>= 2 queue-adjacent events with one
    #: slate key served by one coalesced engine decision) and the
    #: events they covered.
    slates: int = 0
    slate_events: int = 0

    @property
    def shed(self) -> int:
        return self.shed_full + self.shed_stale

    @property
    def shed_ratio(self) -> float:
        offered = self.enqueued + self.shed_full
        return self.shed / offered if offered else 0.0

    def to_dict(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "processed": self.processed,
            "shed_full": self.shed_full,
            "shed_stale": self.shed_stale,
            "shed_ratio": self.shed_ratio,
            "failed": self.failed,
            "batches": self.batches,
            "max_batch_seen": self.max_batch_seen,
            "slates": self.slates,
            "slate_events": self.slate_events,
        }


class _Entry:
    __slots__ = ("work", "future", "enqueued_at", "slate_key",
                 "slate_arg", "slate_work")

    def __init__(self, work, future, enqueued_at, slate_key=None,
                 slate_arg=None, slate_work=None):
        self.work = work
        self.future = future
        self.enqueued_at = enqueued_at
        self.slate_key = slate_key
        self.slate_arg = slate_arg
        self.slate_work = slate_work


class EventBatcher:
    """Bounded queue + single consumer draining coalesced batches.

    ``submit`` returns a future resolved with the work callable's
    result (or its exception); the callable runs on the consumer
    task, so submitted work is globally serialised.
    """

    def __init__(self, *, queue_limit: int = QUEUE_LIMIT,
                 max_batch: int = MAX_BATCH,
                 queue_timeout: float = QUEUE_TIMEOUT) -> None:
        if queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {queue_limit}")
        if max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {max_batch}")
        if queue_timeout <= 0:
            raise ValueError(
                f"queue_timeout must be > 0, got {queue_timeout}")
        self.queue_limit = queue_limit
        self.max_batch = max_batch
        self.queue_timeout = queue_timeout
        self.stats = BatcherStats()
        self._queue: "deque[_Entry]" = deque()
        self._wakeup = asyncio.Event()
        self._closed = False
        self._consumer: "asyncio.Task | None" = None

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        """Spawn the consumer task on the running loop."""
        if self._consumer is None:
            self._consumer = asyncio.get_running_loop().create_task(
                self._consume(), name="repro-serve-batcher")

    async def close(self) -> None:
        """Drain what's queued, then stop the consumer."""
        self._closed = True
        self._wakeup.set()
        if self._consumer is not None:
            await self._consumer
            self._consumer = None

    # -- producer side -----------------------------------------------

    def submit(self, work, *, slate_key=None, slate_arg=None,
               slate_work=None) -> "asyncio.Future":
        """Enqueue a zero-argument callable; raises
        :class:`OverloadError` immediately when the queue is full.

        ``slate_key``/``slate_arg``/``slate_work`` opt the entry into
        slate grouping: when the consumer reaches a run of >= 2
        *queue-adjacent* entries sharing one hashable ``slate_key``,
        it calls the run head's ``slate_work`` once with the run's
        ``slate_arg`` list instead of each ``work``.  ``slate_work``
        must return one entry per member, in order; a member entry
        that is an :class:`Exception` instance resolves that member's
        future exceptionally.  Non-adjacent or keyless entries run
        their own ``work`` exactly as before -- grouping only ever
        coalesces events that were already going to be processed
        back-to-back, so the serialised event order is unchanged.
        """
        if self._closed:
            raise OverloadError("service is shutting down")
        if len(self._queue) >= self.queue_limit:
            self.stats.shed_full += 1
            raise OverloadError(
                f"admission queue full ({self.queue_limit} pending)")
        future = asyncio.get_running_loop().create_future()
        self._queue.append(_Entry(work, future, time.monotonic(),
                                  slate_key, slate_arg, slate_work))
        self.stats.enqueued += 1
        self._wakeup.set()
        return future

    # -- consumer side -----------------------------------------------

    def _executable(self, entry: _Entry, now: float) -> bool:
        """Shed/cancel filter shared by the single and slate paths."""
        if entry.future.cancelled():
            return False
        if now - entry.enqueued_at > self.queue_timeout:
            self.stats.shed_stale += 1
            entry.future.set_exception(OverloadError(
                "request timed out waiting in the admission "
                "queue"))
            return False
        return True

    def _run_slate(self, group: "list[_Entry]") -> None:
        """Serve a key-sharing run through one coalesced call."""
        head = group[0]
        self.stats.slates += 1
        self.stats.slate_events += len(group)
        try:
            results = head.slate_work(
                [entry.slate_arg for entry in group])
            if len(results) != len(group):
                raise RuntimeError(
                    f"slate work returned {len(results)} results "
                    f"for {len(group)} members")
        except Exception as error:  # noqa: BLE001
            for entry in group:
                self.stats.failed += 1
                entry.future.set_exception(error)
            return
        for entry, result in zip(group, results):
            if isinstance(result, Exception):
                self.stats.failed += 1
                entry.future.set_exception(result)
            else:
                entry.future.set_result(result)
                self.stats.processed += 1

    async def _consume(self) -> None:
        while True:
            if not self._queue:
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            drained = 0
            now = time.monotonic()
            while self._queue and drained < self.max_batch:
                entry = self._queue.popleft()
                drained += 1
                if not self._executable(entry, now):
                    continue
                group = [entry]
                if entry.slate_key is not None:
                    while (self._queue and drained < self.max_batch
                           and self._queue[0].slate_key
                           == entry.slate_key):
                        peer = self._queue.popleft()
                        drained += 1
                        if self._executable(peer, now):
                            group.append(peer)
                if len(group) > 1:
                    self._run_slate(group)
                    continue
                try:
                    entry.future.set_result(entry.work())
                    self.stats.processed += 1
                except Exception as error:  # noqa: BLE001
                    self.stats.failed += 1
                    entry.future.set_exception(error)
            self.stats.batches += 1
            self.stats.max_batch_seen = max(
                self.stats.max_batch_seen, drained)
            # One cooperative yield per batch, not per event: this is
            # the coalescing that amortises loop overhead.
            await asyncio.sleep(0)
