"""Dispatch policies for the pipeline simulator.

A policy answers two questions at a resource: which ready job to start
next, and whether a newly arrived job should preempt the running one.
Three concrete policies cover the paper's needs:

* :class:`TotalOrderPolicy` -- one global priority ordering (P1);
* :class:`PerStagePolicy` -- independent priorities per stage, used by
  the DCMP baseline (virtual-deadline-monotonic at each stage);
* :class:`PairwisePolicy` -- a pairwise assignment (P2).  Pairwise
  orientations may be cyclic (Figure 2(b)), in which case no ready job
  may beat all others; ties are resolved by Copeland score (number of
  pairwise wins among the ready jobs), then earliest deadline, then
  lowest index.  The paper defines no runtime dispatcher for cyclic
  assignments; this deterministic rule is our documented choice (see
  DESIGN.md) and its effect on the analytical bound is measured in
  ablation A3.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.core.priorities import PairwiseAssignment, PriorityOrdering


class DispatchPolicy(Protocol):
    """Scheduling decisions at a single resource."""

    def select(self, ready: Sequence[int], stage: int) -> int:
        """Pick the next job to run among ``ready`` (non-empty)."""

    def beats(self, contender: int, incumbent: int, stage: int) -> bool:
        """True iff ``contender`` should preempt ``incumbent``."""


class TotalOrderPolicy:
    """Dispatch by a single global priority ordering."""

    def __init__(self, ordering: "PriorityOrdering | Sequence[int]") -> None:
        if isinstance(ordering, PriorityOrdering):
            self._rank = ordering.priority
        else:
            self._rank = np.asarray(ordering, dtype=np.int64)

    def select(self, ready: Sequence[int], stage: int) -> int:
        return min(ready, key=lambda job: (self._rank[job], job))

    def beats(self, contender: int, incumbent: int, stage: int) -> bool:
        return bool(self._rank[contender] < self._rank[incumbent])


class PerStagePolicy:
    """Independent priority ranks per stage (DCMP baseline).

    ``rank[i, j]`` is the priority value of job ``i`` at stage ``j``
    (lower = higher priority).
    """

    def __init__(self, rank: np.ndarray) -> None:
        rank = np.asarray(rank)
        if rank.ndim != 2:
            raise ValueError(f"rank must be 2-D (jobs x stages), "
                             f"got shape {rank.shape}")
        self._rank = rank

    def select(self, ready: Sequence[int], stage: int) -> int:
        return min(ready, key=lambda job: (self._rank[job, stage], job))

    def beats(self, contender: int, incumbent: int, stage: int) -> bool:
        return bool(self._rank[contender, stage]
                    < self._rank[incumbent, stage])


class PairwisePolicy:
    """Dispatch by a pairwise priority assignment.

    ``select`` returns the job beating every other ready job when one
    exists (always the case for acyclic assignments); otherwise falls
    back to Copeland score / earliest deadline / lowest index.
    ``beats`` uses the pair orientation directly (False for
    non-conflicting pairs, which never meet at a resource anyway).
    """

    def __init__(self, assignment: PairwiseAssignment) -> None:
        self._x = assignment.matrix()
        self._deadline = assignment.jobset.A + assignment.jobset.D

    def select(self, ready: Sequence[int], stage: int) -> int:
        ready = list(ready)
        if len(ready) == 1:
            return ready[0]
        index = np.asarray(ready, dtype=np.int64)
        sub = self._x[np.ix_(index, index)]
        wins = sub.sum(axis=1)
        order = sorted(
            range(len(ready)),
            key=lambda pos: (-int(wins[pos]),
                             float(self._deadline[ready[pos]]),
                             ready[pos]))
        return ready[order[0]]

    def beats(self, contender: int, incumbent: int, stage: int) -> bool:
        return bool(self._x[contender, incumbent])


def make_policy(priorities) -> DispatchPolicy:
    """Coerce orderings, assignments or rank arrays into a policy."""
    if isinstance(priorities, PriorityOrdering):
        return TotalOrderPolicy(priorities)
    if isinstance(priorities, PairwiseAssignment):
        return PairwisePolicy(priorities)
    array = np.asarray(priorities)
    if array.ndim == 1:
        return TotalOrderPolicy(array)
    if array.ndim == 2:
        return PerStagePolicy(array)
    raise TypeError(
        f"cannot build a dispatch policy from {type(priorities)!r}")
