"""Ablation studies beyond the paper's figures (DESIGN.md A1-A7).

* :func:`refinement_ablation` (A1) -- pessimism removed by the Eq. 3 ->
  Eq. 6 refinement and by the ``w_{i,i} = 1`` self-term convention.
* :func:`solver_agreement` (A2/A5) -- the three OPT backends and the
  two ILP linearisations must agree case by case; reports sizes and
  runtimes.
* :func:`bound_tightness` (A3) -- analytical bound vs simulated delay
  for OPDCA orderings, and bound-violation rate of the Copeland
  dispatcher under cyclic pairwise assignments.
* :func:`scalability` (A4) -- runtime of DM/DMR/OPDCA/OPT as the job
  count grows.
* :func:`heuristic_comparison` (A6) -- the future-work pairwise
  strategies (LMR, local search, OPA-guided) vs DMR and OPT.
* :func:`holistic_comparison` (A7) -- classical per-stage additive
  holistic analysis vs the DCA bound (the paper's motivation).

Every ablation accepts ``n_workers``: the per-case bodies live in
module-level functions and are sharded across a process pool by
:func:`repro.experiments.parallel.parallel_map` (results are identical
for any worker count; per-case wall-clock timings are measured inside
the worker that ran the case).

Every ablation except :func:`scalability` also accepts ``store`` (a
:class:`repro.store.ResultStore`): per-case rows are then cached under
a content hash of the work item, so re-running an ablation with the
same arguments replays from disk.  Cached rows keep the wall-clock
timings of the run that computed them.  ``scalability`` is a *timing*
table -- replaying it from a cache would defeat its purpose, so it
never touches the store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.dca import DelayAnalyzer
from repro.core.opdca import opdca
from repro.core.schedulability import SDCA
from repro.experiments.parallel import parallel_map
from repro.pairwise.dm import dm
from repro.pairwise.dmr import dmr
from repro.pairwise.opt import opt
from repro.sim.engine import simulate
from repro.sim.policies import PairwisePolicy, TotalOrderPolicy
from repro.workload.edge import EdgeWorkloadConfig, generate_edge_case


@dataclass
class AblationResult:
    """Generic key -> value table with a context string."""

    name: str
    context: str
    rows: list[dict] = field(default_factory=list)

    def format(self) -> str:
        if not self.rows:
            return f"{self.name}: (no data)"
        keys = list(self.rows[0].keys())
        widths = {k: max(len(str(k)), max(len(_fmt(r[k]))
                                          for r in self.rows))
                  for k in keys}
        header = "  ".join(str(k).ljust(widths[k]) for k in keys)
        lines = [f"{self.name} -- {self.context}", "-" * len(header),
                 header, "-" * len(header)]
        for row in self.rows:
            lines.append("  ".join(
                _fmt(row[k]).ljust(widths[k]) for k in keys))
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _refinement_case(config: EdgeWorkloadConfig, seed: int) -> dict:
    case = generate_edge_case(config, seed=seed)
    jobset = case.jobset
    analyzer = DelayAnalyzer(jobset)
    literal = DelayAnalyzer(jobset, self_coefficient="literal")
    matrix = dm(jobset, "eq6", analyzer=analyzer).assignment.matrix()
    d_eq6 = analyzer.delays_for_pairwise(matrix, equation="eq6")
    d_eq3 = analyzer.delays_for_pairwise(matrix, equation="eq3")
    d_eq3_lit = literal.delays_for_pairwise(matrix, equation="eq3")
    acc6 = opdca(jobset, "eq6",
                 test=SDCA(jobset, "eq6", analyzer=analyzer)).feasible
    acc3 = opdca(jobset, "eq3",
                 test=SDCA(jobset, "eq3", analyzer=analyzer)).feasible
    return {
        "seed": case.seed,
        "eq3/eq6 bound ratio": float(np.mean(d_eq3 / d_eq6)),
        "literal-self ratio": float(np.mean(d_eq3_lit / d_eq6)),
        "OPDCA(eq6)": acc6,
        "OPDCA(eq3)": acc3,
    }


def refinement_ablation(*, cases: int = 10, seed0: int = 0,
                        config: EdgeWorkloadConfig | None = None,
                        n_workers: int = 1,
                        store=None) -> AblationResult:
    """A1: compare Eq. 3 (2 terms/segment) against refined Eq. 6.

    Reports, per test case, the mean delay-bound ratio eq3/eq6 under
    the deadline-monotonic assignment and the acceptance of OPDCA when
    driven by each bound (eq6's refinement can only help).
    """
    config = config or EdgeWorkloadConfig()
    rows = parallel_map(
        _refinement_case,
        [(config, seed0 + offset) for offset in range(cases)],
        n_workers=n_workers, store=store, key="ablation/refinement")
    return AblationResult(
        name="A1 refinement",
        context=f"{cases} cases at paper defaults",
        rows=rows)


def _solver_case(config: EdgeWorkloadConfig, seed: int,
                 equation: str) -> dict:
    from repro.core.exceptions import SolverError

    case = generate_edge_case(config, seed=seed)
    jobset = case.jobset
    analyzer = DelayAnalyzer(jobset)
    outcomes = {}
    timings = {}
    for name, kwargs in (
            ("highs/compact", {"backend": "highs", "mode": "compact"}),
            ("highs/faithful", {"backend": "highs",
                                "mode": "faithful"}),
            ("b&b/compact", {"backend": "branch_bound",
                             "mode": "compact",
                             "node_limit": 20_000}),
            ("cp", {"backend": "cp"})):
        start = time.perf_counter()
        try:
            result = opt(jobset, equation, analyzer=analyzer,
                         **kwargs)
            outcomes[name] = result.feasible
        except SolverError:
            # Budget exhausted without a verdict (possible for the
            # pure-Python branch-and-bound on hard infeasible
            # instances); excluded from the agreement check.
            outcomes[name] = None
        timings[name] = time.perf_counter() - start
    decided = {value for value in outcomes.values()
               if value is not None}
    agree = len(decided) == 1
    return {
        "seed": case.seed,
        "feasible": outcomes["highs/compact"],
        "agree": agree,
        "undecided": sum(value is None
                         for value in outcomes.values()),
        **{f"t({name})": timings[name] for name in timings},
    }


def solver_agreement(*, cases: int = 10, seed0: int = 0,
                     config: EdgeWorkloadConfig | None = None,
                     equation: str = "eq10",
                     n_workers: int = 1,
                     store=None) -> AblationResult:
    """A2 + A5: backend and linearisation agreement for OPT.

    Defaults to a scaled-down workload (40 jobs): agreement is a
    per-instance property, and the from-scratch branch-and-bound pays a
    Python-level LP per node, which paper-scale instances would turn
    into minutes per case.
    """
    config = config or EdgeWorkloadConfig(num_jobs=40, num_aps=10,
                                          num_servers=8)
    rows = parallel_map(
        _solver_case,
        [(config, seed0 + offset, equation) for offset in range(cases)],
        n_workers=n_workers, store=store, key="ablation/solver")
    return AblationResult(
        name="A2/A5 solver agreement",
        context=f"{cases} cases, equation={equation}",
        rows=rows)


def _tightness_case(config: EdgeWorkloadConfig, seed: int) -> dict:
    case = generate_edge_case(config, seed=seed)
    jobset = case.jobset
    analyzer = DelayAnalyzer(jobset)
    row: dict = {"seed": case.seed}

    ordering_result = opdca(jobset, "eq10",
                            test=SDCA(jobset, "eq10",
                                      analyzer=analyzer))
    if ordering_result.feasible:
        sim = simulate(jobset,
                       TotalOrderPolicy(ordering_result.ordering))
        bounds = ordering_result.delays
        row["ordering tightness"] = float(
            np.mean(sim.delays / bounds))
        row["ordering violations"] = int(
            (sim.delays > bounds + 1e-6).sum())
    else:
        row["ordering tightness"] = float("nan")
        row["ordering violations"] = -1

    opt_result = opt(jobset, "eq10", analyzer=analyzer)
    if opt_result.feasible:
        assignment = opt_result.assignment
        sim = simulate(jobset, PairwisePolicy(assignment))
        bounds = opt_result.delays
        row["pairwise cyclic"] = not assignment.is_acyclic()
        row["pairwise tightness"] = float(np.mean(sim.delays / bounds))
        row["pairwise violations"] = int(
            (sim.delays > bounds + 1e-6).sum())
    else:
        row["pairwise cyclic"] = False
        row["pairwise tightness"] = float("nan")
        row["pairwise violations"] = -1
    return row


def bound_tightness(*, cases: int = 10, seed0: int = 0,
                    config: EdgeWorkloadConfig | None = None,
                    n_workers: int = 1,
                    store=None) -> AblationResult:
    """A3: simulated delay vs analytical bound.

    For OPDCA orderings the Eq. 10 bound must dominate the simulated
    delay; for (possibly cyclic) OPT assignments we *measure* how often
    the Copeland dispatcher stays within the bound -- the paper defines
    no dispatcher for cyclic assignments, so this quantifies our
    documented choice.
    """
    config = config or EdgeWorkloadConfig()
    rows = parallel_map(
        _tightness_case,
        [(config, seed0 + offset) for offset in range(cases)],
        n_workers=n_workers, store=store, key="ablation/tightness")
    return AblationResult(
        name="A3 bound tightness",
        context=f"{cases} cases (violations: -1 = not applicable)",
        rows=rows)


def _heuristic_case(config: EdgeWorkloadConfig, seed: int,
                    equation: str) -> tuple[dict, dict]:
    from repro.pairwise.heuristics import lmr, local_search, opa_guided

    case = generate_edge_case(config, seed=seed)
    jobset = case.jobset
    analyzer = DelayAnalyzer(jobset)
    runs = {
        "dmr": lambda: dmr(jobset, equation, analyzer=analyzer),
        "lmr": lambda: lmr(jobset, equation, analyzer=analyzer),
        "local_search": lambda: local_search(
            jobset, equation, analyzer=analyzer),
        "opa_guided": lambda: opa_guided(
            jobset, equation, analyzer=analyzer),
        "opt": lambda: opt(jobset, equation, analyzer=analyzer),
    }
    accepted = {}
    timings = {}
    for name, run in runs.items():
        start = time.perf_counter()
        accepted[name] = run().feasible
        timings[name] = time.perf_counter() - start
    # Completeness sanity: no heuristic may beat OPT.
    for name in ("dmr", "lmr", "local_search", "opa_guided"):
        assert not (accepted[name] and not accepted["opt"])
    return accepted, timings


def heuristic_comparison(*, cases: int = 20, seed0: int = 0,
                         config: EdgeWorkloadConfig | None = None,
                         equation: str = "eq10",
                         n_workers: int = 1,
                         store=None) -> AblationResult:
    """A6: the future-work pairwise strategies vs DMR and OPT.

    Counts acceptances of DMR, LMR (laxity-seeded repair), local search
    and the OPA-guided hybrid against the complete OPT, on edge
    workloads (all relations other than ``<= OPT`` are empirical).
    """
    config = config or EdgeWorkloadConfig()
    results = parallel_map(
        _heuristic_case,
        [(config, seed0 + offset, equation) for offset in range(cases)],
        n_workers=n_workers, store=store, key="ablation/heuristics")
    names = ("dmr", "lmr", "local_search", "opa_guided", "opt")
    counts = {name: sum(accepted[name] for accepted, _ in results)
              for name in names}
    timings = {name: [case_timings[name] for _, case_timings in results]
               for name in names}
    rows = [{
        "approach": name,
        "accepted": counts[name],
        f"AR over {cases} cases (%)": 100.0 * counts[name] / cases,
        "mean time (s)": float(np.mean(timings[name])),
    } for name in names]
    return AblationResult(
        name="A6 pairwise heuristics",
        context=f"{cases} cases at paper defaults, equation={equation}",
        rows=rows)


def _holistic_case(config: EdgeWorkloadConfig, seed: int) -> dict:
    from repro.baselines.holistic import HolisticAnalyzer, holistic_opa

    case = generate_edge_case(config, seed=seed)
    jobset = case.jobset
    analyzer = DelayAnalyzer(jobset)
    hol = HolisticAnalyzer(jobset, blocking="all")
    matrix = dm(jobset, "eq10", analyzer=analyzer).assignment.matrix()
    d_dca = analyzer.delays_for_pairwise(matrix, equation="eq10")
    d_hol = hol.delays_for_pairwise(matrix)
    acc_dca = opdca(jobset, "eq10",
                    test=SDCA(jobset, "eq10",
                              analyzer=analyzer)).feasible
    acc_hol = holistic_opa(jobset).feasible
    ratios = d_hol / d_dca
    return {
        "seed": case.seed,
        "HOL/DCA mean": float(np.mean(ratios)),
        "HOL/DCA max": float(np.max(ratios)),
        "OPA(HOL)": acc_hol,
        "OPDCA(eq10)": acc_dca,
    }


def holistic_comparison(*, cases: int = 20, seed0: int = 0,
                        config: EdgeWorkloadConfig | None = None,
                        n_workers: int = 1,
                        store=None) -> AblationResult:
    """A7: classical holistic analysis (HOL) vs the DCA bound.

    Runs Audsley's OPA once with the per-stage additive holistic test
    and once with ``S_DCA`` (Eq. 10) on the same edge cases, and
    reports the acceptance of each plus the mean bound ratio HOL/DCA
    under the deadline-monotonic assignment.  DCA's advantage is the
    paper's motivation: HOL charges every higher-priority job once per
    shared stage, DCA once per segment end plus a single per-stage max.
    """
    config = config or EdgeWorkloadConfig()
    rows = parallel_map(
        _holistic_case,
        [(config, seed0 + offset) for offset in range(cases)],
        n_workers=n_workers, store=store, key="ablation/holistic")
    return AblationResult(
        name="A7 holistic vs DCA",
        context=f"{cases} cases at paper defaults",
        rows=rows)


#: Timing columns of the scalability table, in reporting order.
#: ``segments`` is the one-off segment-algebra phase; ``level/*`` time
#: a single full Audsley-level evaluation (all candidates) under the
#: paired contribution kernel vs the reference broadcast tensor path.
SCALABILITY_TIMINGS = ("segments", "dm", "dmr", "opdca", "opdca/serial",
                       "opt", "bounds/batched", "bounds/scalar",
                       "level/paired", "level/reference")

#: Extra tier columns measured only when numba is importable: the
#: compiled level kernel and a full OPDCA run on it (the benchmark's
#: with-numba CI leg publishes them; the plain leg never sees them, so
#: the committed baselines stay comparable across both).
SCALABILITY_COMPILED_TIMINGS = ("level/compiled", "opdca/compiled")


def scalability_timings() -> "tuple[str, ...]":
    """The timing columns of this run (compiled tier included when
    the optional numba dependency is importable)."""
    from repro.core.kernels import HAS_NUMBA

    if HAS_NUMBA:
        return SCALABILITY_TIMINGS + SCALABILITY_COMPILED_TIMINGS
    return SCALABILITY_TIMINGS


def _scalability_case(config: EdgeWorkloadConfig,
                      seed: int) -> dict[str, float]:
    """Time every approach on one case, plus the all-jobs bound
    evaluation in both its legacy scalar and batched form and the
    per-phase primitives (segment algebra, one full level evaluation
    per kernel).

    Fresh analyzers are used where memoisation would otherwise let one
    measurement warm up the next.
    """
    from repro.core.segments import SegmentCache

    case = generate_edge_case(config, seed=seed)
    jobset = case.jobset
    timings: dict[str, float] = {}

    # Phase timing: the segment algebra every cold analysis pays once.
    start = time.perf_counter()
    SegmentCache(jobset)
    timings["segments"] = time.perf_counter() - start

    # Every measurement gets its own cold DelayAnalyzer (constructed
    # outside the timed region): the memo caches would otherwise let
    # one approach warm up the next and understate its time.
    analyzer = DelayAnalyzer(jobset)
    start = time.perf_counter()
    dm_result = dm(jobset, "eq10", analyzer=analyzer)
    timings["dm"] = time.perf_counter() - start
    analyzer = DelayAnalyzer(jobset)
    start = time.perf_counter()
    dmr(jobset, "eq10", analyzer=analyzer)
    timings["dmr"] = time.perf_counter() - start
    test = SDCA(jobset, "eq10", analyzer=DelayAnalyzer(jobset))
    start = time.perf_counter()
    opdca(jobset, "eq10", test=test)
    timings["opdca"] = time.perf_counter() - start
    test = SDCA(jobset, "eq10", analyzer=DelayAnalyzer(jobset))
    start = time.perf_counter()
    opdca(jobset, "eq10", test=test, batch=False)
    timings["opdca/serial"] = time.perf_counter() - start
    analyzer = DelayAnalyzer(jobset)
    start = time.perf_counter()
    opt(jobset, "eq10", analyzer=analyzer)
    timings["opt"] = time.perf_counter() - start

    # The primitive inside every inner loop: evaluate all n bounds
    # under one assignment.  Legacy = n scalar delay_bound calls;
    # batched = one delay_bounds_all call.  Both are timed best-of-3
    # on a fresh analyzer per repetition: the batched call is
    # sub-millisecond, where a single scheduler stall on a shared CI
    # runner would otherwise dominate the measurement.
    x = dm_result.assignment.matrix()

    def best_of(repetitions, run, make=lambda: DelayAnalyzer(jobset)):
        best = float("inf")
        for _ in range(repetitions):
            cold = make()
            start = time.perf_counter()
            run(cold)
            best = min(best, time.perf_counter() - start)
        return best

    def scalar_pass(cold):
        for i in range(jobset.num_jobs):
            cold.delay_bound(i, x.T[i], x[i], equation="eq10")

    timings["bounds/scalar"] = best_of(3, scalar_pass)
    timings["bounds/batched"] = best_of(
        3, lambda cold: cold.delay_bounds_all(x.T, x, equation="eq10"))

    # Phase timing: one full Audsley-level evaluation (all candidates,
    # nothing assigned yet) per kernel.  The contribution tensors are
    # pre-warmed outside the timed region, mirroring a real OPDCA run
    # where they are built once and amortised over ~n levels.
    unassigned = np.ones(jobset.num_jobs, dtype=bool)
    assigned = np.zeros(jobset.num_jobs, dtype=bool)

    def warm_paired():
        analyzer = DelayAnalyzer(jobset)
        # One throwaway evaluation materialises the contribution
        # matrices and premasked tensors, so the timed region measures
        # the amortised per-level cost (real OPDCA runs build them
        # once for ~n levels).
        analyzer.level_bounds(unassigned, assigned, equation="eq10")
        return analyzer

    def level_pass(cold):
        cold.level_bounds(unassigned, assigned, equation="eq10")

    timings["level/paired"] = best_of(3, level_pass, make=warm_paired)
    timings["level/reference"] = best_of(
        3, level_pass,
        make=lambda: DelayAnalyzer(jobset, kernel="reference"))

    from repro.core.kernels import HAS_NUMBA

    if HAS_NUMBA:
        def warm_compiled():
            analyzer = DelayAnalyzer(jobset, kernel="compiled")
            # Also triggers the one-off numba jit compilation, which
            # must never land in a timed region.
            analyzer.level_bounds(unassigned, assigned, equation="eq10")
            return analyzer

        timings["level/compiled"] = best_of(
            3, level_pass, make=warm_compiled)
        test = SDCA(jobset, "eq10",
                    analyzer=DelayAnalyzer(jobset, kernel="compiled"))
        start = time.perf_counter()
        opdca(jobset, "eq10", test=test)
        timings["opdca/compiled"] = time.perf_counter() - start
    return timings


def scalability(*, job_counts: tuple[int, ...] = (25, 50, 100, 150),
                cases: int = 3, seed0: int = 0,
                n_workers: int = 1) -> AblationResult:
    """A4: wall-clock scaling with the number of jobs.

    APs/servers scale proportionally with the job count so per-resource
    contention stays comparable.  Each row also reports the speedup of
    the batched all-jobs bound evaluation over the legacy per-job loop
    (``speedup(bounds)``), of the vectorised OPDCA candidate scan over
    the serial one (``speedup(opdca)``), and of the paired level
    kernel over the reference path (``speedup(level)``); when numba is
    importable the compiled-tier twins ``speedup(level/compiled)`` /
    ``speedup(opdca/compiled)`` ride along (see ``docs/kernels.md``).
    """
    configs = []
    for num_jobs in job_counts:
        scale = num_jobs / 100.0
        configs.append(EdgeWorkloadConfig(
            num_jobs=num_jobs,
            num_aps=max(2, int(round(25 * scale))),
            num_servers=max(2, int(round(20 * scale)))))
    case_timings = parallel_map(
        _scalability_case,
        [(config, seed0 + offset)
         for config in configs for offset in range(cases)],
        n_workers=n_workers)

    timing_names = scalability_timings()
    rows = []
    for index, num_jobs in enumerate(job_counts):
        chunk = case_timings[index * cases:(index + 1) * cases]
        means = {name: float(np.mean([t[name] for t in chunk]))
                 for name in timing_names}
        row = {
            "jobs": num_jobs,
            **{f"t({name}) s": means[name] for name in timing_names},
            "speedup(bounds)": means["bounds/scalar"]
            / max(means["bounds/batched"], 1e-12),
            "speedup(opdca)": means["opdca/serial"]
            / max(means["opdca"], 1e-12),
            "speedup(level)": means["level/reference"]
            / max(means["level/paired"], 1e-12),
        }
        if "level/compiled" in means:
            # Compiled-tier ratios share the reference/serial
            # numerators of their paired twins, so the columns are
            # directly comparable in one table.
            row["speedup(level/compiled)"] = (
                means["level/reference"]
                / max(means["level/compiled"], 1e-12))
            row["speedup(opdca/compiled)"] = (
                means["opdca/serial"]
                / max(means["opdca/compiled"], 1e-12))
        rows.append(row)
    context = f"{cases} cases per size, resources scaled with n"
    if n_workers > 1:
        # Timings are wall-clock inside each worker: under CPU
        # contention they are comparable to each other but inflated
        # in absolute terms -- flag it in the table header.
        context += f", timed under {n_workers} concurrent workers"
    return AblationResult(
        name="A4 scalability",
        context=context,
        rows=rows)
