"""Compiled kernel tier: equivalence, fallback and availability.

The compiled tier (``DelayAnalyzer(kernel="compiled")``) runs
numba-jitted loop primitives over the same premasked operands as the
paired kernel.  Numba is optional and absent from the minimal test
environment, so these suites exercise the *pure-python fallback*
loops by monkeypatching :data:`repro.core.kernels.FORCE_FALLBACK` --
the fallback shares every line of arithmetic with the jitted code
(numba compiles the same function body without ``fastmath``), so the
equivalence contracts proven here carry over to the jitted tier.

Contracts under test (see ``docs/kernels.md``):

* compiled vs reference agrees to <= 1e-9 relative on every equation
  (eq1/eq2 on single-resource instances, eq3-eq6 on MSMR, eq10 on
  edge pipelines);
* single-probe vs batch-row is *bitwise* within the compiled tier;
* ``rows=`` slices match the full batch bitwise;
* memo invalidation (the online departure path) never changes values;
* availability: ``kernel="compiled"`` without numba raises
  :class:`~repro.core.kernels.CompiledKernelUnavailable` with an
  actionable message, while ``kernel="auto"`` silently degrades to
  the paired tier.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.kernels as kernels
from repro.core.dca import DelayAnalyzer
from repro.core.kernels import (
    AUTO_COMPILED_MIN_ACTIVE,
    AUTO_COMPILED_MIN_JOBS,
    CompiledKernelUnavailable,
    auto_tier_online,
    pick_tier,
    resolve_kernel,
)
from repro.workload.edge import EdgeWorkloadConfig, generate_edge_case
from repro.workload.random_jobs import (
    RandomInstanceConfig,
    random_jobset,
    random_single_resource_jobset,
)
from tests.properties.test_property_kernels import (
    MSMR_EQUATIONS,
    draw_level_context,
)

#: The ``force_fallback`` fixture is an idempotent module-attribute
#: patch, so sharing it across hypothesis examples is sound.
FIXTURE_OK = (HealthCheck.function_scoped_fixture,)

instances = st.fixed_dictionaries({
    "seed": st.integers(0, 10_000),
    "num_jobs": st.integers(2, 8),
    "num_stages": st.integers(1, 4),
    "resources": st.integers(1, 3),
})


def build(params):
    config = RandomInstanceConfig(
        num_jobs=params["num_jobs"],
        num_stages=params["num_stages"],
        resources_per_stage=params["resources"],
        max_offset=5.0,
    )
    return random_jobset(config, seed=params["seed"])


@pytest.fixture
def force_fallback(monkeypatch):
    """Make the compiled tier constructible without numba (its
    pure-python fallback loops serve the calls)."""
    monkeypatch.setattr(kernels, "FORCE_FALLBACK", True)


@pytest.fixture
def no_compiled(monkeypatch):
    """Simulate a minimal environment: no numba, no force flag."""
    monkeypatch.setattr(kernels, "FORCE_FALLBACK", False)
    monkeypatch.setattr(kernels, "HAS_NUMBA", False)


def edge_jobset(num_jobs=12, seed=2):
    return generate_edge_case(
        EdgeWorkloadConfig(num_jobs=num_jobs, num_aps=4, num_servers=3),
        seed=seed).jobset


class TestCompiledEquivalence:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=FIXTURE_OK)
    @given(params=instances, data=st.data())
    def test_compiled_matches_reference_msmr(self, params, data,
                                             force_fallback):
        jobset = build(params)
        n = jobset.num_jobs
        compiled = DelayAnalyzer(jobset, kernel="compiled")
        reference = DelayAnalyzer(jobset, kernel="reference")
        unassigned, assigned_lower, active = draw_level_context(data, n)
        equation = data.draw(st.sampled_from(MSMR_EQUATIONS))
        c = compiled.level_bounds(unassigned, assigned_lower,
                                  equation=equation, active=active)
        r = reference.level_bounds(unassigned, assigned_lower,
                                   equation=equation, active=active)
        candidates = unassigned & active
        np.testing.assert_allclose(c[candidates], r[candidates],
                                   rtol=1e-9)
        assert np.isnan(c[~active]).all()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=FIXTURE_OK)
    @given(seed=st.integers(0, 10_000), data=st.data())
    def test_compiled_matches_reference_single_resource(
            self, seed, data, force_fallback):
        jobset = random_single_resource_jobset(
            seed=seed, num_jobs=data.draw(st.integers(2, 8)),
            max_offset=4.0)
        n = jobset.num_jobs
        compiled = DelayAnalyzer(jobset, kernel="compiled")
        reference = DelayAnalyzer(jobset, kernel="reference")
        unassigned, assigned_lower, active = draw_level_context(data, n)
        equation = data.draw(st.sampled_from(("eq1", "eq2")))
        c = compiled.level_bounds(unassigned, assigned_lower,
                                  equation=equation, active=active)
        r = reference.level_bounds(unassigned, assigned_lower,
                                   equation=equation, active=active)
        candidates = unassigned & active
        np.testing.assert_allclose(c[candidates], r[candidates],
                                   rtol=1e-9)

    def test_compiled_matches_reference_eq10(self, force_fallback):
        jobset = edge_jobset(num_jobs=14, seed=3)
        n = jobset.num_jobs
        compiled = DelayAnalyzer(jobset, kernel="compiled")
        reference = DelayAnalyzer(jobset, kernel="reference")
        rng = np.random.default_rng(11)
        for _ in range(10):
            unassigned = rng.random(n) < 0.8
            unassigned[rng.integers(n)] = True
            lower = ~unassigned & (rng.random(n) < 0.5)
            active = np.ones(n, dtype=bool)
            active[rng.random(n) < 0.2] = False
            c = compiled.level_bounds(unassigned, lower,
                                      equation="eq10", active=active)
            r = reference.level_bounds(unassigned, lower,
                                       equation="eq10", active=active)
            candidates = unassigned & active
            np.testing.assert_allclose(c[candidates], r[candidates],
                                       rtol=1e-9)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=FIXTURE_OK)
    @given(params=instances, data=st.data())
    def test_single_probe_matches_batch_row(self, params, data,
                                            force_fallback):
        jobset = build(params)
        n = jobset.num_jobs
        analyzer = DelayAnalyzer(jobset, kernel="compiled")
        unassigned, assigned_lower, active = draw_level_context(data, n)
        equation = data.draw(st.sampled_from(MSMR_EQUATIONS))
        batch = analyzer.level_bounds(unassigned, assigned_lower,
                                      equation=equation, active=active)
        for i in np.flatnonzero(unassigned & active):
            single = analyzer.level_bound_single(
                int(i), unassigned, assigned_lower,
                equation=equation, active=active)
            assert single == batch[i]  # bitwise, not approx

    def test_rows_slices_match_full_level(self, force_fallback):
        jobset = edge_jobset()
        n = jobset.num_jobs
        analyzer = DelayAnalyzer(jobset, kernel="compiled")
        rng = np.random.default_rng(3)
        unassigned = rng.random(n) < 0.7
        unassigned[0] = True
        lower = ~unassigned & (rng.random(n) < 0.5)
        full = analyzer.level_bounds(unassigned, lower,
                                     equation="eq10")
        rows = np.flatnonzero(unassigned)[::2]
        sliced = analyzer.level_bounds(unassigned, lower,
                                       equation="eq10", rows=rows)
        assert np.array_equal(full[rows], sliced)

    def test_invalidate_job_preserves_values(self, force_fallback):
        """The online departure path: purging memo entries that
        involve a job must not change any re-queried value."""
        jobset = edge_jobset()
        n = jobset.num_jobs
        analyzer = DelayAnalyzer(jobset, kernel="compiled")
        rng = np.random.default_rng(5)
        unassigned = rng.random(n) < 0.7
        unassigned[1] = True
        lower = ~unassigned & (rng.random(n) < 0.5)
        # eq5's level-independent blocking vector is memoised per
        # active mask, so the purge has something to drop.
        before = analyzer.level_bounds(unassigned, lower,
                                       equation="eq5")
        dropped = analyzer.invalidate_job(1)
        assert sum(dropped.values()) > 0
        after = analyzer.level_bounds(unassigned, lower,
                                      equation="eq5")
        assert np.array_equal(before, after)

    def test_engine_compiled_matches_cold(self, force_fallback):
        """Engine-vs-cold decision equality holds on the compiled
        tier: the incremental engine on compiled-fallback kernels
        reproduces the cold per-event rebuild bit for bit (restrict
        and invalidate paths included)."""
        from repro.online import (
            OnlineAdmissionEngine,
            StreamConfig,
            generate_stream,
        )

        stream = generate_stream(
            StreamConfig(horizon=60.0, rate=0.35), seed=3)
        warm = OnlineAdmissionEngine(
            stream, mode="incremental", kernel="compiled").run()
        cold = OnlineAdmissionEngine(
            stream, mode="cold", kernel="compiled").run()
        one = warm.deterministic_dict()
        two = cold.deterministic_dict()
        one.pop("mode"), two.pop("mode")
        assert one == two


class TestAvailability:
    def test_compiled_without_numba_raises(self, no_compiled):
        with pytest.raises(CompiledKernelUnavailable,
                           match="numba"):
            DelayAnalyzer(edge_jobset(num_jobs=6), kernel="compiled")

    def test_error_names_the_auto_escape_hatch(self, no_compiled):
        with pytest.raises(CompiledKernelUnavailable,
                           match="kernel='auto'"):
            resolve_kernel("compiled", num_jobs=6)

    def test_auto_degrades_to_paired(self, no_compiled):
        analyzer = DelayAnalyzer(
            edge_jobset(num_jobs=AUTO_COMPILED_MIN_JOBS + 4),
            kernel="auto")
        assert analyzer.kernel == "paired"
        assert analyzer.requested_kernel == "auto"

    def test_auto_picks_compiled_when_available(self, force_fallback):
        large = DelayAnalyzer(
            edge_jobset(num_jobs=AUTO_COMPILED_MIN_JOBS + 4),
            kernel="auto")
        assert large.kernel == "compiled"
        small = DelayAnalyzer(edge_jobset(num_jobs=4), kernel="auto")
        assert small.kernel == "paired"

    def test_window_filter_off_resolves_to_reference(self,
                                                     force_fallback):
        assert resolve_kernel("paired", num_jobs=20,
                              window_filter=False) == "reference"
        assert resolve_kernel("auto", num_jobs=20,
                              window_filter=False) == "reference"

    def test_unavailable_beats_window_filter_downgrade(self,
                                                       no_compiled):
        # The availability error must not be masked by the
        # window-filter downgrade to "reference".
        with pytest.raises(CompiledKernelUnavailable):
            resolve_kernel("compiled", num_jobs=20,
                           window_filter=False)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="paired"):
            resolve_kernel("blas", num_jobs=5)

    def test_requested_kernel_survives_resolution(self,
                                                  force_fallback):
        analyzer = DelayAnalyzer(edge_jobset(num_jobs=4),
                                 kernel="auto")
        assert analyzer.requested_kernel == "auto"
        assert analyzer.kernel == "paired"


class TestAutoOnlineCrossover:
    """``kernel="auto"`` online dispatch pins on the *active* count.

    The online engines re-resolve the auto tier per decision through
    :func:`repro.core.kernels.auto_tier_online`, whose crossover
    (``AUTO_COMPILED_MIN_ACTIVE``) deliberately sits below the batch
    one: the fused compiled frontier probe amortises its dispatch
    overhead faster than a whole batch sweep does.
    """

    def test_crossover_pinned_on_active_count(self, force_fallback):
        assert auto_tier_online(AUTO_COMPILED_MIN_ACTIVE) == "compiled"
        assert auto_tier_online(
            AUTO_COMPILED_MIN_ACTIVE - 1) == "paired"
        assert auto_tier_online(0) == "paired"
        assert auto_tier_online(10 * AUTO_COMPILED_MIN_ACTIVE) == \
            "compiled"

    def test_online_crossover_sits_below_batch(self):
        # An active count in [MIN_ACTIVE, MIN_JOBS) picks compiled
        # online but paired in batch context: the online decision
        # amortises dispatch on a single probe, the batch sweep needs
        # the larger universe to win.
        assert AUTO_COMPILED_MIN_ACTIVE < AUTO_COMPILED_MIN_JOBS
        mid = AUTO_COMPILED_MIN_ACTIVE
        assert pick_tier(mid, compiled_ok=True,
                         context="online") == "compiled"
        assert pick_tier(mid, compiled_ok=True,
                         context="batch") == "paired"

    def test_without_compiled_always_paired(self, no_compiled):
        for n in (0, AUTO_COMPILED_MIN_ACTIVE,
                  AUTO_COMPILED_MIN_JOBS, 500):
            assert auto_tier_online(n) == "paired"
            assert pick_tier(n, compiled_ok=False,
                             context="online") == "paired"

    def test_unknown_context_rejected(self):
        with pytest.raises(ValueError, match="context"):
            pick_tier(16, compiled_ok=True, context="bogus")
