"""Smoke tests for the Figure 4 drivers on a tiny grid."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure_4a,
    figure_4b,
    figure_4c,
    figure_4d,
)
from repro.experiments.report import format_series, format_table, shape_checks
from repro.workload.edge import EdgeWorkloadConfig


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        cases=4,
        base=EdgeWorkloadConfig(num_jobs=15, num_aps=5, num_servers=4))


class TestFigure4a:
    @pytest.fixture(scope="class")
    def figure(self, request):
        config = ExperimentConfig(
            cases=4,
            base=EdgeWorkloadConfig(num_jobs=15, num_aps=5,
                                    num_servers=4))
        return figure_4a(config, betas=(0.05, 0.15))

    def test_points_and_series(self, figure):
        assert len(figure.points) == 2
        assert len(figure.series("dm")) == 2
        assert all(0 <= v <= 100 for v in figure.series("opt"))

    def test_guaranteed_shape_holds(self, figure):
        assert shape_checks(figure) == []

    def test_rendering(self, figure):
        table = format_table(figure)
        assert "DM" in table and "OPT" in table
        stacked = format_table(figure, stacked=True)
        assert "+OPDCA" in stacked
        series = format_series(figure)
        assert "fig4a" in series


def test_figure_4b_smoke(tiny_config):
    figure = figure_4b(tiny_config,
                       fractions=((0.01, 0.01, 0.01), (0.1, 0.1, 0.01)))
    assert len(figure.points) == 2
    assert shape_checks(figure) == []


def test_figure_4c_smoke(tiny_config):
    figure = figure_4c(tiny_config, gammas=(0.6, 0.9))
    assert len(figure.points) == 2
    assert shape_checks(figure) == []
    assert figure.points[0].mean_system_heaviness <= 0.6 + 1e-9


def test_figure_4d_smoke(tiny_config):
    figure = figure_4d(tiny_config,
                       settings=(("gamma=0.9", {"gamma": 0.9}),))
    assert figure.metric == "rejected heaviness (%)"
    assert set(figure.approaches) == {"opdca", "dmr", "dm"}
    for approach in figure.approaches:
        assert all(0 <= v <= 100 for v in figure.series(approach))
    # Lower-is-better metric: shape checker must not fire.
    assert shape_checks(figure) == []
