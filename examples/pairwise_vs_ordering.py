"""Observation V.1, live: pairwise priorities beat total orderings.

Recreates the paper's Figure 2 instance -- four jobs, three stages, two
resources per stage, deadlines {60, 55, 55, 50} -- and shows that

1. all 24 total priority orderings violate some deadline (so OPDCA
   correctly reports infeasibility), yet
2. the cyclic pairwise assignment of Figure 2(b)
   (J3 > J1 > J2 > J4 > J3) meets every deadline, and
3. every OPT backend (HiGHS ILP, own branch-and-bound, CP search)
   rediscovers a feasible -- necessarily cyclic -- assignment.

Run:  python examples/pairwise_vs_ordering.py
"""

import itertools

import numpy as np

from repro import (
    DelayAnalyzer,
    Job,
    JobSet,
    MSMRSystem,
    PairwiseAssignment,
    Stage,
    opdca,
)
from repro.pairwise import opt
from repro.sim import PairwisePolicy, simulate


def figure2_jobset() -> JobSet:
    system = MSMRSystem([Stage(2), Stage(2), Stage(2)])
    jobs = [
        Job(processing=(5, 7, 15), deadline=60, resources=(0, 1, 1),
            name="J1"),
        Job(processing=(7, 9, 17), deadline=55, resources=(1, 1, 1),
            name="J2"),
        Job(processing=(6, 8, 30), deadline=55, resources=(0, 0, 0),
            name="J3"),
        Job(processing=(2, 4, 3), deadline=50, resources=(1, 0, 0),
            name="J4"),
    ]
    return JobSet(system, jobs)


def main() -> None:
    jobset = figure2_jobset()
    analyzer = DelayAnalyzer(jobset)

    print("=== 1. Exhaustive check of all 24 orderings (Eq. 6) ===")
    feasible_orderings = 0
    for perm in itertools.permutations(range(4)):
        priority = np.empty(4, dtype=int)
        for rank, job in enumerate(perm, start=1):
            priority[job] = rank
        delays = analyzer.delays_for_ordering(priority, equation="eq6")
        if (delays <= jobset.D + 1e-9).all():
            feasible_orderings += 1
    print(f"  feasible orderings: {feasible_orderings} / 24")
    print(f"  OPDCA agrees: feasible={opdca(jobset, 'eq6').feasible}")

    print("\n=== 2. The paper's pairwise assignment (Figure 2b) ===")
    assignment = PairwiseAssignment.from_pairs(
        jobset, [(2, 0), (0, 1), (1, 3), (3, 2)])
    delays = analyzer.delays_for_pairwise(assignment.matrix(),
                                          equation="eq6")
    for i in range(4):
        print(f"  {jobset.label(i)}: bound={delays[i]:5.1f}  "
              f"deadline={jobset.D[i]:g}  "
              f"{'OK' if delays[i] <= jobset.D[i] else 'MISS'}")
    cycle = assignment.find_cycle()
    pretty = " > ".join(jobset.label(a) for a, _ in cycle)
    print(f"  priority cycle: {pretty} > {jobset.label(cycle[0][0])}")

    print("\n=== 3. Every OPT backend rediscovers feasibility ===")
    for backend in ("highs", "branch_bound", "cp"):
        result = opt(jobset, "eq6", backend=backend)
        print(f"  {backend:>12}: feasible={result.feasible}  "
              f"cyclic={not result.assignment.is_acyclic()}  "
              f"bounds={result.delays.round(1)}")

    print("\n=== 4. Simulated execution under the cyclic assignment ===")
    sim = simulate(jobset, PairwisePolicy(assignment))
    sim.validate()
    print(f"  simulated delays: {sim.delays.round(1)} "
          f"(deadlines {jobset.D.astype(int)})")
    print(f"  all deadlines met in simulation: {sim.all_met}")


if __name__ == "__main__":
    main()
