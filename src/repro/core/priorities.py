"""Priority structures: total orderings and pairwise assignments.

The paper distinguishes two notions of fixed priority in an MSMR system:

* a **priority ordering** (problem P1): a permutation assigning each job
  a unique global priority ``rho_i in [1, n]`` (1 = highest);
* a **pairwise priority assignment** (problem P2): an orientation
  ``J_i > J_k`` for every *conflicting* pair (jobs sharing at least one
  resource).  Observation V.1 shows this is strictly more expressive: a
  pairwise assignment may be feasible (and even cyclic, as in the
  paper's own Figure 2(b)) when no total ordering is.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.core.exceptions import ModelError
from repro.core.system import JobSet


class PriorityOrdering:
    """A total priority order over ``n`` jobs.

    Stored as ``priority[i]`` = priority value of ``J_i`` with 1 the
    highest, matching the paper's convention that a lower ``rho_i``
    means higher priority.
    """

    def __init__(self, priority: Sequence[int]) -> None:
        array = np.asarray(priority, dtype=np.int64)
        n = array.shape[0]
        if sorted(array.tolist()) != list(range(1, n + 1)):
            raise ModelError(
                f"priorities must be a permutation of 1..{n}, got "
                f"{array.tolist()}")
        self._priority = array

    @classmethod
    def from_order(cls, order: Sequence[int]) -> "PriorityOrdering":
        """Build from job indices listed highest-priority first."""
        order = list(order)
        priority = np.zeros(len(order), dtype=np.int64)
        for rank, job in enumerate(order, start=1):
            priority[job] = rank
        return cls(priority)

    @property
    def priority(self) -> np.ndarray:
        """``(n,)`` priority values (1 = highest)."""
        return self._priority.copy()

    @property
    def num_jobs(self) -> int:
        return int(self._priority.shape[0])

    def order(self) -> list[int]:
        """Job indices from highest priority to lowest."""
        return [int(j) for j in np.argsort(self._priority, kind="stable")]

    def rank(self, i: int) -> int:
        """Priority value of job ``i`` (1 = highest)."""
        return int(self._priority[i])

    def is_higher(self, i: int, k: int) -> bool:
        """True iff ``J_i`` has higher priority than ``J_k``."""
        return bool(self._priority[i] < self._priority[k])

    def higher_mask(self, i: int) -> np.ndarray:
        """Boolean mask of jobs with higher priority than ``J_i``."""
        return self._priority < self._priority[i]

    def lower_mask(self, i: int) -> np.ndarray:
        """Boolean mask of jobs with lower priority than ``J_i``."""
        return self._priority > self._priority[i]

    def as_matrix(self) -> np.ndarray:
        """``(n, n)`` bool matrix, ``[i, k]`` true iff ``J_i > J_k``."""
        return self._priority[:, None] < self._priority[None, :]

    def to_pairwise(self, jobset: JobSet) -> "PairwiseAssignment":
        """Project onto the conflict pairs of ``jobset``."""
        return PairwiseAssignment.from_matrix(jobset, self.as_matrix())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PriorityOrdering):
            return NotImplemented
        return bool(np.array_equal(self._priority, other._priority))

    def __hash__(self) -> int:
        return hash(tuple(self._priority.tolist()))

    def __repr__(self) -> str:
        return f"PriorityOrdering(order={self.order()})"


class PairwiseAssignment:
    """An orientation of every conflicting job pair.

    Internally an ``(n, n)`` boolean matrix ``x`` with ``x[i, k]`` true
    iff ``J_i > J_k``; entries of non-conflicting pairs are kept False in
    both directions (their relative priority is inconsequential -- see
    Section V of the paper).
    """

    def __init__(self, jobset: JobSet, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=bool)
        n = jobset.num_jobs
        if x.shape != (n, n):
            raise ModelError(f"matrix has shape {x.shape}, expected {(n, n)}")
        conflict = jobset.conflicts
        oriented_both = x & x.T
        if (oriented_both & conflict).any():
            raise ModelError("pair oriented in both directions")
        missing = conflict & ~(x | x.T)
        if missing.any():
            i, k = np.argwhere(missing)[0]
            raise ModelError(
                f"conflicting pair ({int(i)}, {int(k)}) left unoriented")
        self._jobset = jobset
        self._x = x & conflict
        self._conflict = conflict

    @classmethod
    def from_matrix(cls, jobset: JobSet,
                    x: np.ndarray) -> "PairwiseAssignment":
        """Build from any boolean higher-than matrix (extra entries on
        non-conflicting pairs are dropped)."""
        return cls(jobset,
                   np.asarray(x, dtype=bool) & jobset.conflicts)

    @classmethod
    def from_pairs(cls, jobset: JobSet,
                   higher_pairs: Iterable[tuple[int, int]]
                   ) -> "PairwiseAssignment":
        """Build from explicit ``(winner, loser)`` pairs.

        Every conflicting pair must appear exactly once (in one of the
        two directions).
        """
        n = jobset.num_jobs
        x = np.zeros((n, n), dtype=bool)
        for winner, loser in higher_pairs:
            x[winner, loser] = True
        return cls(jobset, x)

    @property
    def jobset(self) -> JobSet:
        return self._jobset

    @property
    def num_jobs(self) -> int:
        return self._jobset.num_jobs

    def matrix(self) -> np.ndarray:
        """Copy of the ``(n, n)`` higher-than matrix."""
        return self._x.copy()

    def conflict_matrix(self) -> np.ndarray:
        """Copy of the symmetric conflict mask."""
        return self._conflict.copy()

    def is_higher(self, i: int, k: int) -> bool:
        """True iff ``J_i > J_k`` (False for non-conflicting pairs)."""
        return bool(self._x[i, k])

    def in_conflict(self, i: int, k: int) -> bool:
        return bool(self._conflict[i, k])

    def higher_mask(self, i: int) -> np.ndarray:
        """Jobs with higher priority than ``J_i`` (i.e. beating it)."""
        return self._x[:, i].copy()

    def lower_mask(self, i: int) -> np.ndarray:
        """Jobs over which ``J_i`` has priority."""
        return self._x[i, :].copy()

    def flipped(self, winner: int, loser: int) -> "PairwiseAssignment":
        """Return a copy with the pair re-oriented to ``winner > loser``."""
        if not self._conflict[winner, loser]:
            raise ModelError(
                f"jobs {winner} and {loser} share no resource")
        x = self._x.copy()
        x[winner, loser] = True
        x[loser, winner] = False
        return PairwiseAssignment(self._jobset, x)

    def tournament_graph(self) -> nx.DiGraph:
        """Directed graph with an edge ``i -> k`` whenever ``J_i > J_k``."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_jobs))
        graph.add_edges_from(
            (int(i), int(k)) for i, k in np.argwhere(self._x))
        return graph

    def find_cycle(self) -> list[tuple[int, int]] | None:
        """A priority cycle as edge list, or None when acyclic.

        The paper's Figure 2(b) assignment is cyclic
        (``J3 > J1 > J2 > J4 > J3``), which is precisely why pairwise
        assignments are more expressive than orderings.
        """
        try:
            cycle = nx.find_cycle(self.tournament_graph())
        except nx.NetworkXNoCycle:
            return None
        return [(int(a), int(b)) for a, b, *_ in cycle]

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def to_total_order(self) -> PriorityOrdering:
        """Extend to a total ordering via topological sort.

        Only possible when the assignment is acyclic; raises
        :class:`ModelError` otherwise.
        """
        cycle = self.find_cycle()
        if cycle is not None:
            raise ModelError(
                f"assignment is cyclic ({cycle}); no consistent total "
                f"ordering exists")
        order = list(nx.topological_sort(self.tournament_graph()))
        return PriorityOrdering.from_order(order)

    def resource_order(self, stage: int, resource: int) -> list[int]:
        """Induced priority order of the jobs mapped to one resource.

        Jobs sharing a resource always conflict, so the assignment
        restricted to them is a complete tournament.  When that
        tournament is acyclic -- always the case inside one resource
        for assignments produced from total orderings, and usually for
        solver outputs too -- the jobs are returned highest-priority
        first.  A cyclic restriction (possible in principle: the
        paper's Figure 2(b) is cyclic *across* resources, and nothing
        forbids a cycle within one) raises :class:`ModelError` naming
        the cycle, since no dispatch order represents it.
        """
        members = self._jobset.jobs_on_resource(stage, resource)
        if len(members) <= 1:
            return members
        index = np.asarray(members, dtype=np.int64)
        sub = self._x[np.ix_(index, index)]
        graph = nx.DiGraph()
        graph.add_nodes_from(members)
        for a in range(len(members)):
            for b in range(len(members)):
                if sub[a, b]:
                    graph.add_edge(members[a], members[b])
        try:
            return [int(j) for j in nx.topological_sort(graph)]
        except nx.NetworkXUnfeasible:
            cycle = nx.find_cycle(graph)
            raise ModelError(
                f"pairwise assignment is cyclic within S{stage}/"
                f"R{resource}: {[(int(a), int(b)) for a, b in cycle]}"
            ) from None

    def per_resource_orders(self) -> dict[tuple[int, int], list[int]]:
        """Priority order per (stage, resource) with >= 1 job.

        This is the deployable form of a pairwise assignment: each
        resource's dispatcher only needs the order of its own jobs.
        Raises :class:`ModelError` if any single resource's restriction
        is cyclic (see :meth:`resource_order`).
        """
        orders = {}
        for stage in range(self._jobset.num_stages):
            pool = self._jobset.system.stages[stage].num_resources
            for resource in range(pool):
                members = self._jobset.jobs_on_resource(stage, resource)
                if members:
                    orders[(stage, resource)] = self.resource_order(
                        stage, resource)
        return orders

    def copeland_scores(self, subset: Iterable[int] | None = None
                        ) -> dict[int, int]:
        """Number of pairwise wins of each job within ``subset``.

        Used by the simulator to dispatch under cyclic assignments.
        """
        if subset is None:
            subset = range(self.num_jobs)
        members = list(subset)
        index = np.asarray(members, dtype=np.int64)
        sub = self._x[np.ix_(index, index)]
        wins = sub.sum(axis=1)
        return {job: int(score) for job, score in zip(members, wins)}

    def agrees_with(self, ordering: PriorityOrdering) -> bool:
        """True iff every oriented pair matches the total ordering."""
        matrix = ordering.as_matrix()
        return bool(((self._x & ~matrix) == False).all())  # noqa: E712

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PairwiseAssignment):
            return NotImplemented
        return bool(np.array_equal(self._x, other._x))

    def __repr__(self) -> str:
        pairs = int(self._conflict.sum() // 2)
        return (f"PairwiseAssignment(n={self.num_jobs}, "
                f"conflict_pairs={pairs}, acyclic={self.is_acyclic()})")
