"""CLI coverage for ``repro campaign expand|run|report``.

Exercises the error paths the satellite checklist calls out --
malformed spec files, unknown axis names, contradictory excludes --
and the manifest round-trip (spec -> JSON -> spec is the identity).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, load_campaign
from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]
SMOKE = str(REPO_ROOT / "examples/campaigns/smoke.json")


def _write_spec(tmp_path, payload) -> str:
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(payload))
    return str(path)


TINY_SPEC = {
    "name": "cli-tiny",
    "axes": {"family": ["edge"], "jobs": [6], "seed": [0, 1]},
    "approaches": ["dm", "dmr"],
    "workload": {"edge": {"num_aps": 4, "num_servers": 3}},
}


class TestParser:
    def test_subcommands_present(self):
        parser = build_parser()
        for action in ("expand", "run", "report"):
            args = parser.parse_args(["campaign", action, "spec.json"])
            assert args.command == "campaign"
            assert args.campaign_command == action
            assert args.spec == "spec.json"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_run_has_cache_and_jobs_parity(self):
        args = build_parser().parse_args(
            ["campaign", "run", "spec.json", "--jobs", "4",
             "--cache-dir", "/tmp/x", "--resume"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.resume
        args = build_parser().parse_args(
            ["campaign", "report", "spec.json", "--no-cache"])
        assert args.no_cache

    def test_expand_has_no_jobs_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "expand", "spec.json", "--jobs", "2"])


class TestErrorPaths:
    def test_missing_spec_file(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "expand",
                  str(tmp_path / "missing.json")])
        assert excinfo.value.code == 2
        assert "no campaign spec" in capsys.readouterr().err

    def test_malformed_json_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "expand", str(path)])
        assert excinfo.value.code == 2
        assert "malformed JSON" in capsys.readouterr().err

    def test_unknown_axis_name(self, tmp_path, capsys):
        spec = dict(TINY_SPEC)
        spec["axes"] = {"frequency": [1, 2]}
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "expand", _write_spec(tmp_path, spec)])
        assert excinfo.value.code == 2
        assert "unknown axis 'frequency'" in capsys.readouterr().err

    def test_contradictory_exclude(self, tmp_path, capsys):
        spec = dict(TINY_SPEC)
        spec["exclude"] = [{"jobs": [99]}]
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "expand", _write_spec(tmp_path, spec)])
        assert excinfo.value.code == 2
        assert "contradictory exclude" in capsys.readouterr().err

    def test_all_eliminating_excludes(self, tmp_path, capsys):
        spec = dict(TINY_SPEC)
        spec["exclude"] = [{"family": ["edge"]}]
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "expand", _write_spec(tmp_path, spec)])
        assert excinfo.value.code == 2
        assert "eliminate" in capsys.readouterr().err

    def test_unsupported_extension(self, tmp_path, capsys):
        path = tmp_path / "spec.yaml"
        path.write_text("name: x")
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "expand", str(path)])
        assert excinfo.value.code == 2
        assert "extension" in capsys.readouterr().err

    def test_report_without_cache_dir(self, tmp_path, capsys,
                                      monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "report",
                  _write_spec(tmp_path, TINY_SPEC)])
        assert excinfo.value.code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_report_on_cold_store_lists_missing(self, tmp_path,
                                                capsys):
        from repro.store import ResultStore

        ResultStore(tmp_path / "store")  # exists, but empty
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "report",
                  _write_spec(tmp_path, TINY_SPEC),
                  "--cache-dir", str(tmp_path / "store")])
        assert excinfo.value.code == 2
        assert "2 of 2 scenarios" in capsys.readouterr().err

    def test_resume_without_store(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "run",
                  _write_spec(tmp_path, TINY_SPEC),
                  "--resume", "--cache-dir",
                  str(tmp_path / "nowhere")])
        assert excinfo.value.code == 2
        assert "no result store" in capsys.readouterr().err


class TestManifestRoundTrip:
    def test_expand_manifest_spec_is_identity(self, tmp_path, capsys):
        spec_path = _write_spec(tmp_path, TINY_SPEC)
        manifest_path = tmp_path / "manifest.json"
        assert main(["campaign", "expand", spec_path,
                     "--output", str(manifest_path)]) == 0
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        original = load_campaign(spec_path)
        assert CampaignSpec.from_dict(manifest["spec"]) == original
        assert manifest["scenarios"] == 2
        # The embedded spec reloads through a file round-trip too.
        clone_path = tmp_path / "clone.json"
        clone_path.write_text(json.dumps(manifest["spec"]))
        assert load_campaign(clone_path) == original

    def test_expand_list_prints_every_scenario(self, capsys):
        assert main(["campaign", "expand", SMOKE, "--list"]) == 0
        out = capsys.readouterr().out
        assert "campaign smoke" in out
        assert out.count("[") >= 12  # one bracket tag per scenario


class TestRunAndReport:
    def test_run_then_warm_resume_then_report(self, tmp_path, capsys):
        spec_path = _write_spec(tmp_path, TINY_SPEC)
        cache = str(tmp_path / "cache")

        assert main(["campaign", "run", spec_path,
                     "--cache-dir", cache]) == 0
        cold = capsys.readouterr().out
        assert "misses=2" in cold and "writes=2" in cold
        assert "campaign cli-tiny" in cold

        assert main(["campaign", "run", spec_path, "--resume",
                     "--cache-dir", cache]) == 0
        warm = capsys.readouterr().out
        assert "misses=0" in warm and "writes=0" in warm

        report_path = tmp_path / "report.json"
        assert main(["campaign", "report", spec_path,
                     "--cache-dir", cache,
                     "--output", str(report_path)]) == 0
        capsys.readouterr()
        payload = json.loads(report_path.read_text())
        assert payload["deterministic"]["scenarios"] == 2

    def test_run_no_cache_prints_no_summary(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        spec_path = _write_spec(tmp_path, TINY_SPEC)
        assert main(["campaign", "run", spec_path, "--no-cache"]) == 0
        assert "[cache]" not in capsys.readouterr().out
