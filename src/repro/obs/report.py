"""Render a JSONL trace file: span tree + self-time profile.

``repro obs report FILE`` loads the spans written by a
``JsonlSpanExporter`` and prints, per trace, an indented span tree
with durations and attributes, followed by a top-N table ranked by
*self* time (span duration minus the duration of its children) —
the span-level analogue of a profiler's exclusive-time column.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .tracing import iter_trace_file

__all__ = ["load_spans", "render_report"]

_ATTRS_SHOWN = 6


def load_spans(path: str) -> List[Dict[str, Any]]:
    return list(iter_trace_file(path))


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    shown = []
    for key in sorted(attrs):
        if key == "profile":
            shown.append("profile=<attached>")
            continue
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.6g}"
        shown.append(f"{key}={value}")
        if len(shown) >= _ATTRS_SHOWN:
            break
    extra = len(attrs) - len(shown)
    if extra > 0:
        shown.append(f"+{extra} more")
    return "  [" + " ".join(shown) + "]"


def _self_times(
    spans: List[Dict[str, Any]],
) -> Dict[str, float]:
    child_total: Dict[str, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent:
            child_total[parent] = (
                child_total.get(parent, 0.0)
                + float(span.get("duration", 0.0))
            )
    return {
        span["span_id"]: max(
            0.0,
            float(span.get("duration", 0.0))
            - child_total.get(span["span_id"], 0.0),
        )
        for span in spans
    }


def _render_tree(
    span: Dict[str, Any],
    children: Dict[str, List[Dict[str, Any]]],
    depth: int,
    lines: List[str],
) -> None:
    duration_ms = float(span.get("duration", 0.0)) * 1e3
    indent = "  " * depth
    lines.append(
        f"{indent}{span['name']}  {duration_ms:.3f} ms"
        f"{_format_attrs(span.get('attrs') or {})}"
    )
    for child in children.get(span["span_id"], []):
        _render_tree(child, children, depth + 1, lines)


def render_report(
    spans: List[Dict[str, Any]], top: int = 10
) -> str:
    """Return the textual report for a list of span dicts."""
    if not spans:
        return "no spans in trace file\n"
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)

    lines: List[str] = []
    for trace_id in sorted(by_trace):
        trace_spans = sorted(
            by_trace[trace_id],
            key=lambda s: float(s.get("start", 0.0)),
        )
        ids = {span["span_id"] for span in trace_spans}
        children: Dict[str, List[Dict[str, Any]]] = {}
        roots: List[Dict[str, Any]] = []
        for span in trace_spans:
            parent = span.get("parent_id")
            if parent and parent in ids:
                children.setdefault(parent, []).append(span)
            else:
                roots.append(span)
        lines.append(f"trace {trace_id}")
        for root in roots:
            _render_tree(root, children, 1, lines)
        lines.append("")

    self_time = _self_times(spans)
    ranked = sorted(
        spans,
        key=lambda s: self_time.get(s["span_id"], 0.0),
        reverse=True,
    )[:top]
    lines.append(f"top {min(top, len(spans))} spans by self time")
    width = max(len(span["name"]) for span in ranked)
    for span in ranked:
        self_ms = self_time.get(span["span_id"], 0.0) * 1e3
        total_ms = float(span.get("duration", 0.0)) * 1e3
        lines.append(
            f"  {span['name']:<{width}}  "
            f"self {self_ms:9.3f} ms  "
            f"total {total_ms:9.3f} ms"
        )
    for span in spans:
        profile = (span.get("attrs") or {}).get("profile")
        if profile:
            lines.append("")
            lines.append(f"profile for {span['name']}")
            for row in profile:
                lines.append(f"  {row}")
    return "\n".join(lines) + "\n"
