"""Compiled loop primitives of the ``kernel="compiled"`` tier.

Three reductions cover every per-equation level evaluator of
:class:`repro.core.dca.DelayAnalyzer` (see ``docs/kernels.md`` for the
term-by-term mapping):

* :func:`pair_sum` -- the job-additive term: a column-masked row sum
  over a premasked contribution matrix;
* :func:`stage_sum` -- the stage-additive / blocking terms: per-stage
  column-masked row maxima over a premasked ``(n, n, N)`` contribution
  tensor, summed over a stage range;
* :func:`level_probe` -- the fused frontier probe of the MSMR
  OPA-compatible bounds (eq3/eq5/eq6): job-additive pair sum, self
  term and stage-additive maxima in a single pass over each candidate
  row.  This is the online admission engine's hot primitive -- one
  jit dispatch per level call instead of two, and each ``C``/tensor
  row is read once while hot in cache.

Both are compiled with :func:`numba.njit` when numba is importable and
run as plain-python loops otherwise (``HAS_NUMBA`` tells which).  The
fallback executes the *same* code, so jitted and interpreted results
are identical: ``njit`` without ``fastmath`` preserves IEEE evaluation
order, and the loops below fix that order explicitly (left-fold over
ascending indices).

Numerical contract
------------------
Sums are left-folds, not numpy's pairwise trees, so the compiled tier
agrees with the reference kernel within the documented ``<= 1e-9``
relative tolerance rather than bitwise.  Two exact properties still
hold by construction:

* single-row and batch evaluations share these primitives, so they
  remain bitwise identical to each other;
* skipping a masked-out column is bit-identical to adding its 0.0
  premasked term (``x + 0.0 == x``), so the reduction tree has fixed
  shape and placing or discarding a job can only lower the result --
  the ``FLOAT_MONOTONE_EQUATIONS`` contract survives this tier.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - the with-numba branch has no CI leg yet
    from numba import njit

    HAS_NUMBA = True
except ImportError:
    HAS_NUMBA = False

    def njit(*args, **kwargs):
        """Identity stand-in for :func:`numba.njit`."""
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


@njit(cache=True, nogil=True)
def pair_sum(C, cols, rows, out):
    """``out[r] += sum_{k: cols[k]} C[rows[r], k]`` (left-fold over
    ascending ``k``)."""
    for r in range(rows.shape[0]):
        i = rows[r]
        acc = 0.0
        for k in range(C.shape[1]):
            if cols[k]:
                acc += C[i, k]
        out[r] += acc


@njit(cache=True, nogil=True)
def level_probe(C, self_add, T, cols, rows, stop, out):
    """Fused candidate-row probe of one Audsley level::

        out[r] += self_add[i] + sum_{k: cols[k]} C[i, k]
                  + sum_{j < stop} max(0, max_{k: cols[k]} T[i, k, j])

    with ``i = rows[r]``.  Left-fold accumulation over ascending ``k``
    then ascending ``j``; the 0 floor of each stage maximum matches
    the reference kernel's ``np.where`` fill (masked tensor entries
    are exactly 0).  ``T`` rows are read contiguously (``k``-outer).
    """
    width = stop
    for r in range(rows.shape[0]):
        i = rows[r]
        acc = self_add[i]
        for k in range(C.shape[1]):
            if cols[k]:
                acc += C[i, k]
        maxima = np.zeros(width)
        for k in range(T.shape[1]):
            if cols[k]:
                for j in range(width):
                    value = T[i, k, j]
                    if value > maxima[j]:
                        maxima[j] = value
        for j in range(width):
            acc += maxima[j]
        out[r] += acc


@njit(cache=True, nogil=True)
def stage_sum(T, mask, rows, start, stop, out):
    """``out[r] += sum_{start <= j < stop} max(0, max_{k: mask[k]}
    T[rows[r], k, j])``.

    The 0 floor matches the reference kernel's ``np.where`` fill; the
    masked entries of the premasked tensors are exactly 0.  Row slices
    ``T[i]`` are read contiguously (``k``-outer loop).
    """
    width = stop - start
    for r in range(rows.shape[0]):
        i = rows[r]
        maxima = np.zeros(width)
        for k in range(T.shape[1]):
            if mask[k]:
                for j in range(width):
                    value = T[i, k, start + j]
                    if value > maxima[j]:
                        maxima[j] = value
        total = 0.0
        for j in range(width):
            total += maxima[j]
        out[r] += total
