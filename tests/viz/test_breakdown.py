"""Tests for the delay-breakdown waterfall renderer."""

import numpy as np
import pytest

from repro.core.dca import DelayAnalyzer
from repro.core.explain import explain_delay
from repro.viz.breakdown import breakdown_waterfall


@pytest.fixture
def breakdown(example1_jobset):
    analyzer = DelayAnalyzer(example1_jobset)
    higher = np.array([True, False, False, False])
    return explain_delay(analyzer, 1, higher, equation="eq6")


class TestBreakdownWaterfall:
    def test_header_reports_bound_and_deadline(self, breakdown):
        chart = breakdown_waterfall(breakdown)
        head = chart.splitlines()[0]
        assert f"{breakdown.total:.2f}" in head
        assert f"{breakdown.deadline:.2f}" in head

    def test_one_row_per_term(self, breakdown):
        chart = breakdown_waterfall(breakdown)
        body = [line for line in chart.splitlines()[1:] if "cum" in line]
        assert len(body) == len(breakdown.terms)

    def test_cumulative_column_reaches_total(self, breakdown):
        chart = breakdown_waterfall(breakdown)
        last = [line for line in chart.splitlines() if "cum" in line][-1]
        assert f"cum {breakdown.total:.2f}" in last

    def test_deadline_marker_present(self, breakdown):
        chart = breakdown_waterfall(breakdown)
        assert chart.splitlines()[-1].strip().startswith("^")

    def test_marker_aligned_with_bars(self, breakdown):
        chart = breakdown_waterfall(breakdown, width=40)
        lines = chart.splitlines()
        caret_col = lines[-1].index("^")
        for line in (line for line in lines if "cum" in line):
            # In the caret column every term row shows either the
            # deadline dot (bar ended short) or a bar glyph (bar ran
            # past the deadline) -- never padding or digits.
            assert line[caret_col] in ".#=+o"

    def test_width_guard(self, breakdown):
        with pytest.raises(ValueError, match="width"):
            breakdown_waterfall(breakdown, width=10)

    def test_custom_labels(self, breakdown):
        chart = breakdown_waterfall(
            breakdown, label=lambda j: f"job-{j}")
        assert "job-1" in chart
