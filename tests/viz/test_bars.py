"""Tests for the ASCII bar-chart renderers."""

import pytest

from repro.viz.bars import SERIES_GLYPHS, bar_chart, grouped_bars, stacked_bars


class TestBarChart:
    def test_scales_to_maximum(self):
        chart = bar_chart({"a": 50.0, "b": 100.0}, width=20, maximum=100)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 20

    def test_default_maximum_is_largest_value(self):
        chart = bar_chart({"a": 5.0, "b": 10.0}, width=10)
        assert chart.splitlines()[1].count("#") == 10

    def test_values_annotated_with_unit(self):
        chart = bar_chart({"DM": 71.0}, maximum=100, unit="%")
        assert "71.0%" in chart

    def test_tiny_nonzero_value_still_visible(self):
        chart = bar_chart({"a": 0.01, "b": 100.0}, width=20, maximum=100)
        assert chart.splitlines()[0].count("#") == 1

    def test_zero_value_draws_nothing(self):
        chart = bar_chart({"a": 0.0, "b": 1.0}, width=20)
        assert chart.splitlines()[0].count("#") == 0

    def test_labels_aligned(self):
        chart = bar_chart({"x": 1.0, "longer": 2.0})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty_input(self):
        assert bar_chart({}) == "(no data)"

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            bar_chart({"a": -1.0})

    def test_too_narrow_rejected(self):
        with pytest.raises(ValueError, match="width"):
            bar_chart({"a": 1.0}, width=5)


class TestStackedBars:
    ROWS = [
        ("0.05", {"DM": 90.0, "+DMR": 5.0, "+OPT": 5.0}),
        ("0.20", {"DM": 40.0, "+DMR": 20.0, "+OPT": 10.0}),
    ]

    def test_total_is_sum_of_increments(self):
        chart = stacked_bars(self.ROWS, width=50)
        lines = chart.splitlines()
        assert "100.0%" in lines[1]
        assert "70.0%" in lines[2]

    def test_segments_use_distinct_glyphs(self):
        chart = stacked_bars(self.ROWS, width=50)
        body = chart.splitlines()[1]
        for glyph in SERIES_GLYPHS[:3]:
            assert glyph in body

    def test_legend_names_every_series(self):
        legend = stacked_bars(self.ROWS).splitlines()[0]
        for name in ("DM", "+DMR", "+OPT"):
            assert name in legend

    def test_bar_length_tracks_cumulative_total(self):
        chart = stacked_bars(self.ROWS, width=50, maximum=100)
        full = chart.splitlines()[1]
        partial = chart.splitlines()[2]
        def bar(line):
            return line.split("|")[1].rstrip()
        assert len(bar(full)) == 50
        assert len(bar(partial)) == 35  # 70% of 50

    def test_mismatched_series_rejected(self):
        rows = [("a", {"x": 1.0}), ("b", {"y": 1.0})]
        with pytest.raises(ValueError, match="series"):
            stacked_bars(rows)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            stacked_bars([("a", {"x": -2.0})])

    def test_empty_input(self):
        assert stacked_bars([]) == "(no data)"


class TestGroupedBars:
    GROUPS = [
        ("beta=0.01", {"OPDCA": 0.5, "DMR": 1.0, "DM": 2.0}),
        ("beta=0.2", {"OPDCA": 3.0, "DMR": 5.0, "DM": 8.0}),
    ]

    def test_groups_separated_by_blank_line(self):
        chart = grouped_bars(self.GROUPS)
        assert "\n\n" in chart
        assert chart.count("beta=") == 2

    def test_shared_scale_across_groups(self):
        chart = grouped_bars(self.GROUPS, width=40)
        lines = [line for line in chart.splitlines() if "|" in line]
        # DM in the second group holds the maximum -> full width.
        assert lines[-1].count("#") == 40
        # OPDCA in the first group: 0.5/8 of 40 -> 2-3 cells.
        assert 1 <= lines[0].count("#") <= 3

    def test_empty_input(self):
        assert grouped_bars([]) == "(no data)"

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            grouped_bars([("g", {"a": -0.1})])
