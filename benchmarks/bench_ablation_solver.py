"""Ablations A2 + A5: OPT backend and linearisation agreement/speed.

All complete backends (HiGHS on the compact and faithful ILPs, own
branch-and-bound, CP search) must return the same accept/reject verdict
case by case; the benchmark records their relative runtimes.
"""

import numpy as np

from benchmarks.conftest import QUICK_CASES
from repro.experiments.ablation import solver_agreement
from repro.experiments.config import full_scale


def test_solver_agreement_and_speed(benchmark):
    cases = 20 if full_scale() else max(4, QUICK_CASES // 2)

    result = benchmark.pedantic(
        lambda: solver_agreement(cases=cases), rounds=1, iterations=1)
    assert all(row["agree"] for row in result.rows), \
        "complete OPT backends disagreed"
    timing_keys = [key for key in result.rows[0] if key.startswith("t(")]
    for key in timing_keys:
        benchmark.extra_info[key] = round(
            float(np.mean([row[key] for row in result.rows])), 4)
    benchmark.extra_info["cases"] = cases
    print()
    print(result.format())
