"""Per-test-case evaluation of every approach (Section VI).

For one generated edge test case, runs each approach of Figure 4 --
DM, DMR, OPDCA, OPT and DCMP -- against the Eq. 10 analysis (DCMP by
simulation, as in the paper) and records acceptance plus wall-clock
time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.dcmp import dcmp
from repro.core.dca import DelayAnalyzer
from repro.core.opdca import opdca
from repro.core.schedulability import SDCA
from repro.pairwise.dm import dm
from repro.pairwise.dmr import dmr
from repro.pairwise.opt import opt
from repro.workload.edge import EdgeTestCase
from repro.workload.heaviness import system_heaviness

#: Approaches in the paper's stacking order, plus the DCMP baseline.
APPROACHES = ("dm", "dmr", "opdca", "opt", "dcmp")

#: Format marker of serialized case results (result-store payloads).
CASE_RESULT_FORMAT = "repro-case-result"
CASE_RESULT_VERSION = 1


@dataclass
class CaseResult:
    """Acceptance and timing of every approach on one test case."""

    seed: int
    accepted: dict[str, bool]
    runtime: dict[str, float]
    system_heaviness: float
    notes: dict[str, str] = field(default_factory=dict)

    def accepted_by(self, approach: str) -> bool:
        return self.accepted.get(approach, False)

    def to_dict(self) -> dict:
        """JSON-ready form (exact: floats survive bitwise via repr)."""
        return {
            "format": CASE_RESULT_FORMAT,
            "version": CASE_RESULT_VERSION,
            "seed": int(self.seed),
            "accepted": {k: bool(v) for k, v in self.accepted.items()},
            "runtime": {k: float(v) for k, v in self.runtime.items()},
            "system_heaviness": float(self.system_heaviness),
            "notes": {k: str(v) for k, v in self.notes.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CaseResult":
        """Rebuild a result from :meth:`to_dict` output (validated)."""
        if data.get("format") != CASE_RESULT_FORMAT or \
                int(data.get("version", -1)) != CASE_RESULT_VERSION:
            raise ValueError(
                f"not a {CASE_RESULT_FORMAT} v{CASE_RESULT_VERSION} "
                f"payload: format={data.get('format')!r} "
                f"version={data.get('version')!r}")
        return cls(seed=int(data["seed"]),
                   accepted={k: bool(v)
                             for k, v in data["accepted"].items()},
                   runtime={k: float(v)
                            for k, v in data["runtime"].items()},
                   system_heaviness=float(data["system_heaviness"]),
                   notes={k: str(v) for k, v in data["notes"].items()})


def evaluate_case(case: EdgeTestCase, *,
                  approaches: tuple[str, ...] = APPROACHES,
                  equation: str = "eq10",
                  opt_backend: str = "highs") -> CaseResult:
    """Run the selected approaches on one test case.

    All analytical approaches share one :class:`DelayAnalyzer` (and thus
    one segment cache); DCMP runs the discrete-event simulator with the
    edge pipeline's preemption flags.
    """
    jobset = case.jobset
    analyzer = DelayAnalyzer(jobset)
    accepted: dict[str, bool] = {}
    runtime: dict[str, float] = {}
    notes: dict[str, str] = {}

    def timed(name, fn):
        start = time.perf_counter()
        result = fn()
        runtime[name] = time.perf_counter() - start
        return result

    for approach in approaches:
        if approach == "dm":
            result = timed("dm", lambda: dm(jobset, equation,
                                            analyzer=analyzer))
            accepted["dm"] = result.feasible
        elif approach == "dmr":
            result = timed("dmr", lambda: dmr(jobset, equation,
                                              analyzer=analyzer))
            accepted["dmr"] = result.feasible
            notes["dmr_flips"] = str(result.stats.get("flips", 0))
        elif approach == "opdca":
            test = SDCA(jobset, equation, analyzer=analyzer)
            result = timed("opdca", lambda: opdca(jobset, equation,
                                                  test=test))
            accepted["opdca"] = result.feasible
        elif approach == "opt":
            result = timed("opt", lambda: opt(
                jobset, equation, analyzer=analyzer,
                backend=opt_backend))
            accepted["opt"] = result.feasible
            notes["opt_status"] = str(result.stats.get("status", ""))
        elif approach == "dcmp":
            # Budget release = the strict reading of "decomposed jobs";
            # see repro.baselines.dcmp and EXPERIMENTS.md.
            result = timed("dcmp", lambda: dcmp(jobset, release="budget"))
            accepted["dcmp"] = result.feasible
        else:
            raise ValueError(f"unknown approach {approach!r}")

    return CaseResult(seed=case.seed, accepted=accepted, runtime=runtime,
                      system_heaviness=system_heaviness(jobset),
                      notes=notes)
