"""MILP substrate: problem container and complete solver backends.

The paper solves its OPT ILP with Gurobi; offline this package offers
two interchangeable complete backends -- HiGHS through
``scipy.optimize.milp`` and a from-scratch 0/1 branch-and-bound -- plus
the building blocks to assemble models programmatically.
"""

from repro.solver.branch_bound import solve_branch_bound
from repro.solver.highs import solve_highs
from repro.solver.milp import MILPProblem, ModelBuilder
from repro.solver.result import SolveResult, SolveStatus

__all__ = [
    "MILPProblem",
    "ModelBuilder",
    "SolveResult",
    "SolveStatus",
    "solve_branch_bound",
    "solve_highs",
]
