"""Tests for the critical-scaling sensitivity analysis."""

import numpy as np
import pytest

from repro.core.scaling import (
    critical_scaling,
    scaling_profile,
    verify_homogeneity,
)
from repro.core.system import JobSet


@pytest.fixture
def jobset():
    return JobSet.single_resource(
        processing=[(4, 6), (2, 3)], deadlines=[40, 30])


class TestCriticalScaling:
    def test_closed_form_matches_definition(self, jobset):
        priority = np.array([1, 2])
        result = critical_scaling(jobset, priority)
        # Scale the job set by the factor: the bottleneck job lands
        # exactly on its deadline.
        assert result.factor > 1.0
        scaled = JobSet.single_resource(
            processing=[tuple(p * result.factor for p in job.processing)
                        for job in jobset.jobs],
            deadlines=[40, 30])
        from repro.core.dca import DelayAnalyzer

        delays = DelayAnalyzer(scaled).delays_for_ordering(priority)
        slack = scaled.D - delays
        assert slack.min() == pytest.approx(0.0, abs=1e-9)
        assert (slack >= -1e-9).all()

    def test_bottleneck_attains_minimum(self, jobset):
        result = critical_scaling(jobset, np.array([1, 2]))
        assert result.headroom[result.bottleneck] == \
            pytest.approx(result.factor)

    def test_infeasible_assignment_below_one(self):
        tight = JobSet.single_resource([(5, 5), (5, 5)], [11, 11])
        result = critical_scaling(tight, np.array([1, 2]))
        assert result.factor < 1.0
        assert not result.schedulable

    def test_pairwise_matrix_accepted(self, fig2_jobset):
        from tests.conftest import FIG2_PAIRS

        n = fig2_jobset.num_jobs
        x = np.zeros((n, n), dtype=bool)
        for winner, loser in FIG2_PAIRS:
            x[winner, loser] = True
        result = critical_scaling(fig2_jobset, x, equation="eq6")
        assert result.schedulable  # Figure 2(b) is feasible

    def test_bad_priority_shape_rejected(self, jobset):
        with pytest.raises(ValueError, match="rank vector"):
            critical_scaling(jobset, np.zeros((2, 2, 2)))


class TestHomogeneity:
    @pytest.mark.parametrize("factor", [0.5, 1.0, 2.5])
    def test_all_bounds_homogeneous(self, small_edge_jobset, factor):
        n = small_edge_jobset.num_jobs
        priority = np.arange(1, n + 1)
        assert verify_homogeneity(small_edge_jobset, priority,
                                  factor=factor, equation="eq10")

    def test_eq6_homogeneous(self, jobset):
        assert verify_homogeneity(jobset, np.array([1, 2]), factor=3.0,
                                  equation="eq6")

    def test_nonpositive_factor_rejected(self, jobset):
        with pytest.raises(ValueError, match="positive"):
            verify_homogeneity(jobset, np.array([1, 2]), factor=0.0)


class TestScalingProfile:
    def test_reports_bottleneck_first(self, jobset):
        report = scaling_profile(jobset, np.array([1, 2]))
        lines = report.splitlines()
        assert "critical scaling factor" in lines[0]
        assert "bottleneck" in lines[1]

    def test_flags_infeasible(self):
        tight = JobSet.single_resource([(5, 5), (5, 5)], [11, 11])
        report = scaling_profile(tight, np.array([1, 2]))
        assert "INFEASIBLE" in report
