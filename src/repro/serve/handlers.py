"""Endpoint logic of the admission service (transport-free).

Each handler is an ``async`` function of ``(service, request)``
returning ``(status, payload)``; :mod:`repro.serve.app` owns the
HTTP/1.1 plumbing and maps :class:`~repro.serve.tenants.ServeError`
to 400/404 and :class:`~repro.serve.batcher.OverloadError` to 503.

Endpoints
---------
``GET  /healthz``                    liveness + uptime.
``GET  /metrics``                    service SLO metrics (decision
                                     latency p50/p99, events/sec,
                                     shed ratio, per-tenant summary);
                                     ``?format=prometheus`` or an
                                     ``Accept: text/plain`` header
                                     switches to Prometheus text
                                     exposition of the whole
                                     ``repro.obs`` registry.
``GET  /v1/tenants``                 tenant names.
``POST /v1/tenants``                 create (``{"name", "scenario"}``).
``GET  /v1/tenants/{name}``          tenant status.
``DELETE /v1/tenants/{name}``        remove a tenant.
``GET  /v1/tenants/{name}/records``  deterministic event records
                                     (``?start=N`` to page).
``POST /v1/admit`` / ``/v1/depart``  the hot path: one event through
                                     the batcher into the engine.
``POST /v1/snapshot``                persist all tenants to the store.
``POST /v1/restore``                 rebuild tenants from a snapshot
                                     (``{"key": ...}`` optional).
``GET  /v1/traces/{id}``             spans of one trace id.
"""

from __future__ import annotations

import time

from repro.serve.snapshot import restore_snapshot, save_snapshot
from repro.serve.tenants import (
    NotFoundError,
    ServeError,
    scenario_from_dict,
)


def _require(body: dict, key: str):
    if not isinstance(body, dict) or key not in body:
        raise ServeError(f"request body needs a {key!r} field")
    return body[key]


async def handle_healthz(service, request) -> "tuple[int, dict]":
    return 200, {
        "status": "ok",
        "uptime_seconds": time.monotonic() - service.started_at,
        "tenants": len(service.tenants),
    }


async def handle_metrics(service, request) -> "tuple[int, dict]":
    wants_text = (
        request.query.get("format") == "prometheus"
        or "text/plain" in request.headers.get("accept", ""))
    if wants_text:
        return 200, service.metrics_prometheus()
    return 200, service.metrics()


async def handle_list_tenants(service, request) -> "tuple[int, dict]":
    return 200, {"tenants": service.tenants.names()}


async def handle_create_tenant(service, request) -> "tuple[int, dict]":
    body = request.body
    name = _require(body, "name")
    spec = scenario_from_dict(_require(body, "scenario"))
    tenant = service.tenants.create(name, spec)
    service.traces.record(
        request.trace_id, "tenant-created", tenant=tenant.name,
        jobs=tenant.num_jobs)
    return 201, tenant.status()


async def handle_get_tenant(service, request) -> "tuple[int, dict]":
    return 200, service.tenants.get(request.path_arg).status()


async def handle_delete_tenant(service, request) -> "tuple[int, dict]":
    service.tenants.delete(request.path_arg)
    return 200, {"deleted": request.path_arg}


async def handle_tenant_records(service, request) -> "tuple[int, dict]":
    tenant = service.tenants.get(request.path_arg)
    raw = request.query.get("start", "0")
    try:
        start = int(raw)
    except ValueError:
        raise ServeError(f"start must be an integer, got {raw!r}")
    if start < 0:
        raise ServeError(f"start must be >= 0, got {start}")
    records = tenant.records(start)
    return 200, {
        "tenant": tenant.name,
        "start": start,
        "records": records,
        "final_admitted": tenant.result().final_admitted,
    }


async def _handle_event(service, request, kind) -> "tuple[int, dict]":
    body = request.body
    name = _require(body, "tenant")
    uid = _require(body, "uid")
    now = _require(body, "time")
    if not isinstance(now, (int, float)) or isinstance(now, bool):
        raise ServeError(f"time must be a number, got {now!r}")
    tenant = service.tenants.get(name)
    service.traces.record(
        request.trace_id, "enqueued", tenant=name, kind=kind, uid=uid)
    payload = await service.process_event(tenant, kind, uid, float(now))
    service.traces.record(
        request.trace_id, "decided", tenant=name, uid=uid,
        decision=payload["decision"])
    return 200, payload


async def handle_admit(service, request) -> "tuple[int, dict]":
    return await _handle_event(service, request, "arrive")


async def handle_depart(service, request) -> "tuple[int, dict]":
    return await _handle_event(service, request, "depart")


async def handle_snapshot(service, request) -> "tuple[int, dict]":
    store = service.require_store()
    outcome = save_snapshot(service.tenants, store)
    service.traces.record(
        request.trace_id, "snapshot", key=outcome["key"])
    return 200, outcome


async def handle_restore(service, request) -> "tuple[int, dict]":
    store = service.require_store()
    body = request.body if isinstance(request.body, dict) else {}
    key = body.get("key")
    if key is not None and not isinstance(key, str):
        raise ServeError(f"key must be a string, got {key!r}")
    outcome = restore_snapshot(service.tenants, store, key)
    service.traces.record(
        request.trace_id, "restore", key=outcome["key"],
        tenants=outcome["tenants"])
    return 200, outcome


async def handle_trace(service, request) -> "tuple[int, dict]":
    spans = service.traces.get(request.path_arg)
    if spans is None:
        raise NotFoundError(
            f"no trace {request.path_arg!r} (unknown or evicted)")
    return 200, {"trace_id": request.path_arg, "spans": spans}


#: ``(method, route) -> handler``.  Routes with a trailing ``/*``
#: capture one path segment into ``request.path_arg``.
ROUTES = {
    ("GET", "/healthz"): handle_healthz,
    ("GET", "/metrics"): handle_metrics,
    ("GET", "/v1/tenants"): handle_list_tenants,
    ("POST", "/v1/tenants"): handle_create_tenant,
    ("GET", "/v1/tenants/*"): handle_get_tenant,
    ("DELETE", "/v1/tenants/*"): handle_delete_tenant,
    ("GET", "/v1/tenants/*/records"): handle_tenant_records,
    ("POST", "/v1/admit"): handle_admit,
    ("POST", "/v1/depart"): handle_depart,
    ("POST", "/v1/snapshot"): handle_snapshot,
    ("POST", "/v1/restore"): handle_restore,
    ("GET", "/v1/traces/*"): handle_trace,
}


def resolve(method: str, path: str):
    """``(handler, path_arg)`` for a request line, or raise 404."""
    handler = ROUTES.get((method, path))
    if handler is not None:
        return handler, None
    parts = path.split("/")
    # /v1/tenants/{name} and /v1/tenants/{name}/records
    if len(parts) == 4 and path.startswith("/v1/tenants/"):
        handler = ROUTES.get((method, "/v1/tenants/*"))
        if handler is not None and parts[3]:
            return handler, parts[3]
    if (len(parts) == 5 and path.startswith("/v1/tenants/")
            and parts[4] == "records"):
        handler = ROUTES.get((method, "/v1/tenants/*/records"))
        if handler is not None and parts[3]:
            return handler, parts[3]
    if len(parts) == 4 and path.startswith("/v1/traces/"):
        handler = ROUTES.get((method, "/v1/traces/*"))
        if handler is not None and parts[3]:
            return handler, parts[3]
    raise NotFoundError(f"no route for {method} {path}")
