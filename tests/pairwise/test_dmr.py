"""Tests for the DMR heuristic (Algorithm 2)."""

import pytest

from repro.core.dca import DelayAnalyzer
from repro.core.system import JobSet
from repro.pairwise.dm import dm
from repro.pairwise.dmr import dmr
from repro.workload.random_jobs import RandomInstanceConfig, random_jobset
from tests.conftest import EXAMPLE1_PROCESSING


#: Random MSMR instance on which DM fails but repair succeeds (also
#: schedulable by OPDCA); see tests/pairwise/test_admission.py.
REPAIRABLE = RandomInstanceConfig(num_jobs=5, num_stages=3,
                                  resources_per_stage=2,
                                  slack_range=(0.7, 1.6))
REPAIRABLE_SEED = 0


class TestRepair:
    def test_repairs_instance_dm_cannot_schedule(self):
        """DM fails on this instance; the repair phase must steal
        priority from slack donors until every deadline holds."""
        jobset = random_jobset(REPAIRABLE, seed=REPAIRABLE_SEED)
        assert not dm(jobset, "eq6").feasible
        result = dmr(jobset, "eq6")
        assert result.feasible
        assert result.stats["flips"] >= 1
        assert (result.delays <= jobset.D + 1e-9).all()

    def test_no_flips_when_dm_feasible(self):
        jobset = JobSet.single_resource(
            processing=EXAMPLE1_PROCESSING,
            deadlines=[150, 140, 130, 120], preemptive=True)
        result = dmr(jobset, "eq1")
        assert result.feasible
        assert result.stats["flips"] == 0

    def test_flip_keeps_donor_feasible(self):
        for seed in range(15):
            jobset = random_jobset(
                RandomInstanceConfig(num_jobs=6, num_stages=3,
                                     resources_per_stage=2,
                                     slack_range=(0.7, 1.8)),
                seed=seed)
            result = dmr(jobset, "eq6")
            if result.feasible:
                assert (result.delays <= jobset.D + 1e-9).all()

    def test_infeasible_returns_best_attempt(self, fig2_jobset):
        result = dmr(fig2_jobset, "eq6")
        assert not result.feasible
        assert result.assignment is not None
        assert result.delays is not None

    def test_dominates_dm(self):
        """DMR accepts every instance DM accepts (repair only starts
        from DM and never breaks a feasible assignment)."""
        for seed in range(25):
            jobset = random_jobset(
                RandomInstanceConfig(num_jobs=6, num_stages=3,
                                     resources_per_stage=2,
                                     slack_range=(0.6, 1.6)),
                seed=seed)
            analyzer = DelayAnalyzer(jobset)
            if dm(jobset, "eq6", analyzer=analyzer).feasible:
                assert dmr(jobset, "eq6", analyzer=analyzer).feasible

    def test_flip_budget_respected(self, fig2_jobset):
        result = dmr(fig2_jobset, "eq6", max_flips=0)
        assert not result.feasible
        assert result.stats["flips"] == 0


class TestLocality:
    def test_flip_only_affects_the_two_jobs(self, fig2_jobset):
        """Re-orienting a pair must not change any third job's bound --
        the structural property the repair relies on."""
        analyzer = DelayAnalyzer(fig2_jobset)
        from repro.pairwise.dm import dm_assignment
        assignment = dm_assignment(fig2_jobset)
        before = analyzer.delays_for_pairwise(assignment.matrix(),
                                              equation="eq6")
        flipped = assignment.flipped(0, 2)
        after = analyzer.delays_for_pairwise(flipped.matrix(),
                                             equation="eq6")
        for job in (1, 3):
            assert after[job] == pytest.approx(before[job])
        assert after[0] != pytest.approx(before[0])


class TestEquationSupport:
    @pytest.mark.parametrize("equation", ["eq6", "eq4", "eq10"])
    def test_runs_on_msmr_instance(self, fig2_jobset, equation):
        result = dmr(fig2_jobset, equation)
        assert result.equation == equation
        assert result.delays is not None
