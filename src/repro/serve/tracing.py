"""Structured per-request tracing for the admission service.

Every request entering the service carries a *trace id*: either the
client's own (an ``X-Trace-Id`` header or a ``trace_id`` body field,
propagated verbatim) or one the service mints.  The id travels through
the batching queue into the decision path, is stamped onto the
response, and every hop appends a structured span to a bounded
in-memory :class:`TraceLog` queryable over ``GET /v1/traces/{id}``.

This is deliberately a ring buffer, not a durable store: traces are a
debugging instrument for the live process, while the durable record
of decisions is the tenant journal (:mod:`repro.serve.snapshot`).

Trace ids are minted per :class:`TraceLog` (not from a module
global): each minter carries a random per-instance prefix, so a
service restored from a snapshot into a fresh process can never
mint ids colliding with the previous incarnation's, and parallel
logs in one test run stay disjoint.  When a span exporter is
configured in :mod:`repro.obs`, every hop recorded here is also
emitted as an ordinary ``repro.obs`` span carrying the same trace
id, which stitches serve hops and engine spans into one tree.
"""

from __future__ import annotations

import itertools
import os
import re
from collections import OrderedDict

from repro import obs

#: Client-supplied trace ids must match this (defence against log
#: injection / unbounded keys); longer or stranger ids are replaced.
TRACE_ID_PATTERN = re.compile(r"^[A-Za-z0-9._:-]{1,64}$")

#: Default bound on distinct traces kept (oldest evicted first).
TRACE_LOG_CAPACITY = 1024

#: Spans kept per trace (a trace is a handful of hops; runaway
#: clients reusing one id for a whole load test stay bounded).
SPANS_PER_TRACE = 64


class TraceIdMinter:
    """Process-collision-proof trace-id source.

    A serial counter plus a random prefix drawn at construction:
    two minters (two processes, two logs, a process restored from a
    snapshot) produce disjoint id spaces with probability
    ``1 - 2**-24`` per pair.
    """

    def __init__(self) -> None:
        self._serial = itertools.count(1)
        self._unique = os.urandom(3).hex()

    def mint(self, prefix: str = "t") -> str:
        return f"{prefix}-{self._unique}-{next(self._serial):06d}"

    def coerce(self, candidate) -> "tuple[str, bool]":
        """``(trace_id, minted)``: the validated client id, or a
        fresh one when the candidate is absent or malformed."""
        if isinstance(candidate, str) and TRACE_ID_PATTERN.match(
            candidate
        ):
            return candidate, False
        return self.mint(), True


_default_minter = TraceIdMinter()


def mint_trace_id(prefix: str = "t") -> str:
    """A fresh process-unique trace id (``t-<rand>-000001``)."""
    return _default_minter.mint(prefix)


def coerce_trace_id(candidate) -> "tuple[str, bool]":
    """Module-level convenience over a shared default minter."""
    return _default_minter.coerce(candidate)


class TraceLog:
    """Bounded per-trace span log (insertion-ordered, oldest out)."""

    def __init__(self, *, capacity: int = TRACE_LOG_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._traces: "OrderedDict[str, list[dict]]" = OrderedDict()
        self._truncated: "dict[str, int]" = {}
        self.dropped = 0
        self.spans_dropped = 0
        self.minter = TraceIdMinter()

    def __len__(self) -> int:
        return len(self._traces)

    def mint(self, prefix: str = "t") -> str:
        return self.minter.mint(prefix)

    def coerce(self, candidate) -> "tuple[str, bool]":
        return self.minter.coerce(candidate)

    def record(self, trace_id: str, stage: str, **detail) -> None:
        """Append one span ``{"stage", ...detail}`` to a trace.

        Truncation at :data:`SPANS_PER_TRACE` is counted, never
        silent: the per-trace tally is kept while the trace lives
        and the total is exposed as ``spans_dropped`` in
        :meth:`stats` (and from there in ``/metrics``).
        """
        spans = self._traces.get(trace_id)
        if spans is None:
            while len(self._traces) >= self._capacity:
                evicted, _ = self._traces.popitem(last=False)
                self._truncated.pop(evicted, None)
                self.dropped += 1
            spans = self._traces[trace_id] = []
        if len(spans) < SPANS_PER_TRACE:
            spans.append({"stage": stage, **detail})
        else:
            self._truncated[trace_id] = (
                self._truncated.get(trace_id, 0) + 1
            )
            self.spans_dropped += 1
        if obs.tracing_enabled():
            with obs.start_trace(
                f"serve.{stage}", trace_id, **detail
            ):
                pass

    def get(self, trace_id: str) -> "list[dict] | None":
        """The spans of one trace, or ``None`` if unknown/evicted."""
        spans = self._traces.get(trace_id)
        return list(spans) if spans is not None else None

    def dropped_spans(self, trace_id: str) -> int:
        """Spans truncated from one live trace."""
        return self._truncated.get(trace_id, 0)

    def stats(self) -> dict:
        return {
            "traces": len(self._traces),
            "capacity": self._capacity,
            "dropped_traces": self.dropped,
            "spans_dropped": self.spans_dropped,
        }
