"""Tests for the resource-cluster partition layer (ShardMap/Routing,
JobSet.partition, SegmentCache.partition)."""

import numpy as np
import pytest

from repro.core.exceptions import ModelError
from repro.core.partition import (
    ShardMap,
    partition_assignment,
    separable,
)
from repro.core.segments import SegmentCache
from repro.core.system import JobSet
from repro.workload.random_jobs import RandomInstanceConfig, random_jobset


def _jobset(n=12, *, resources=4, seed=0):
    return random_jobset(
        RandomInstanceConfig(num_jobs=n, num_stages=3,
                             resources_per_stage=resources),
        seed=seed)


class TestShardMap:
    def test_blocked_assignment_covers_contiguous_blocks(self):
        jobset = _jobset(resources=4)
        shard_map = ShardMap.blocked(jobset.system, 2)
        assert shard_map.num_shards == 2
        for row in shard_map.assignment:
            assert list(row) == sorted(row)  # contiguous blocks
            assert set(row) == {0, 1}

    def test_blocked_needs_enough_resources(self):
        jobset = _jobset(resources=2)
        with pytest.raises(ModelError):
            ShardMap.blocked(jobset.system, 3)
        with pytest.raises(ModelError):
            ShardMap.blocked(jobset.system, 0)

    def test_explicit_assignment_validation(self):
        jobset = _jobset(resources=4)
        stages = jobset.system.num_stages
        with pytest.raises(ModelError):  # wrong stage count
            ShardMap(jobset.system, [[0] * 4] * (stages + 1))
        with pytest.raises(ModelError):  # wrong resource count
            ShardMap(jobset.system, [[0, 1]] * stages)
        with pytest.raises(ModelError):  # negative shard id
            ShardMap(jobset.system, [[0, 0, -1, 0]] * stages)
        with pytest.raises(ModelError):  # shard 1 owns nothing
            ShardMap(jobset.system, [[0, 0, 2, 2]] * stages)

    def test_shards_of_and_home_of(self):
        jobset = _jobset(resources=4)
        shard_map = ShardMap.blocked(jobset.system, 2)
        stages = jobset.system.num_stages
        local = [0] * stages   # all resources in shard 0's block
        assert shard_map.shards_of(local) == (0,)
        assert shard_map.home_of(local) == 0
        cross = [0] + [3] * (stages - 1)  # one stage in each block
        assert shard_map.shards_of(cross) == (0, 1)
        assert shard_map.home_of(cross) == 1  # majority of stages
        with pytest.raises(ModelError):
            shard_map.shards_of([0] * (stages + 1))

    def test_home_ties_break_to_smallest_shard(self):
        jobset = random_jobset(
            RandomInstanceConfig(num_jobs=4, num_stages=2,
                                 resources_per_stage=4), seed=0)
        shard_map = ShardMap.blocked(jobset.system, 2)
        assert shard_map.home_of([0, 3]) == 0  # 1 stage each -> min id

    def test_route_flags_cross_shard_jobs(self):
        jobset = _jobset(n=20, resources=4, seed=3)
        shard_map = ShardMap.blocked(jobset.system, 2)
        routing = shard_map.route(jobset)
        assert routing.num_jobs == jobset.num_jobs
        for i in range(jobset.num_jobs):
            touched = shard_map.shards_of(jobset.R[i])
            assert routing.touched[i] == touched
            assert routing.cross[i] == (len(touched) > 1)
            assert routing.home[i] in touched
        # members = locals homed there + cross visitors
        for shard in range(2):
            members = set(routing.members(shard).tolist())
            locals_ = set(routing.local_jobs(shard).tolist())
            assert locals_ <= members
            for i in locals_:
                assert not routing.cross[i]

    def test_separable_predicate(self):
        jobset = _jobset(n=20, resources=4, seed=3)
        routing = ShardMap.blocked(jobset.system, 2).route(jobset)
        local = [int(i) for i in np.flatnonzero(~routing.cross)]
        assert separable(routing, local)
        assert separable(routing) == (routing.num_cross == 0)


class TestJobSetPartition:
    def test_partition_is_disjoint_and_exhaustive(self):
        jobset = _jobset(n=15, resources=4, seed=1)
        routing = ShardMap.blocked(jobset.system, 2).route(jobset)
        parts = jobset.partition(partition_assignment(routing))
        seen = []
        for indices, sub in parts:
            seen.extend(indices.tolist())
            if sub is not None:
                assert sub.num_jobs == len(indices)
        assert sorted(seen) == list(range(jobset.num_jobs))

    def test_partitioned_subsets_match_restrict(self):
        jobset = _jobset(n=10, resources=4, seed=2)
        assignment = np.array([i % 2 for i in range(10)])
        parts = jobset.partition(assignment)
        for indices, sub in parts:
            expected = jobset.restrict([int(i) for i in indices])
            assert np.array_equal(sub.P, expected.P)
            assert np.array_equal(sub.R, expected.R)
            assert np.array_equal(sub.D, expected.D)

    def test_empty_shard_yields_none(self):
        jobset = _jobset(n=4, resources=4)
        parts = jobset.partition(np.zeros(4, dtype=int), num_shards=2)
        assert parts[1][1] is None
        assert parts[1][0].size == 0

    def test_partition_validation(self):
        jobset = _jobset(n=4, resources=4)
        with pytest.raises(ModelError):
            jobset.partition(np.zeros(3, dtype=int))  # wrong length
        with pytest.raises(ModelError):
            jobset.partition(np.array([0, 0, 0, -1]))
        with pytest.raises(ModelError):
            jobset.partition(np.array([0, 1, 2, 0]), num_shards=2)


class TestSegmentCachePartition:
    def test_sliced_caches_match_recomputed(self):
        jobset = _jobset(n=12, resources=4, seed=4)
        cache = SegmentCache(jobset)
        assignment = np.array([i % 3 for i in range(12)])
        parts = jobset.partition(assignment, num_shards=3)
        caches = cache.partition(parts)
        for (indices, sub), sliced in zip(parts, caches):
            if sub is None:
                assert sliced is None
                continue
            fresh = SegmentCache(sub)
            assert np.array_equal(sliced.ep, fresh.ep)
            assert np.array_equal(sliced.W, fresh.W)
            assert np.array_equal(sliced.t1, fresh.t1)

    def test_partition_mirrors_jobset_shape(self):
        jobset = _jobset(n=6, resources=4)
        cache = SegmentCache(jobset)
        parts = jobset.partition(np.zeros(6, dtype=int), num_shards=2)
        caches = cache.partition(parts)
        assert len(caches) == 2
        assert caches[0] is not None and caches[1] is None


class TestAnalysisExactness:
    def test_shard_local_analysis_is_exact(self):
        """Delay bounds of shard-local jobs computed per shard equal
        the bounds over the union universe: jobs routed to different
        shards never share a resource, so per-shard analysis is exact
        (the soundness claim of :mod:`repro.core.partition`)."""
        from repro.core.dca import DelayAnalyzer

        jobset = _jobset(n=14, resources=4, seed=5)
        routing = ShardMap.blocked(jobset.system, 2).route(jobset)
        local = [int(i) for i in np.flatnonzero(~routing.cross)]
        assert len(local) >= 4, "seed must yield shard-local jobs"
        union = jobset.restrict(local)
        union_priority = np.arange(1, union.num_jobs + 1)
        whole = DelayAnalyzer(union).delays_for_ordering(
            union_priority)
        union_routing = ShardMap.blocked(
            union.system, 2).route(union)
        for shard in range(2):
            members = [int(i)
                       for i in union_routing.local_jobs(shard)]
            if not members:
                continue
            sub = union.restrict(members)
            # induced priorities keep the union's relative order
            sub_priority = np.argsort(
                np.argsort(union_priority[members])) + 1
            alone = DelayAnalyzer(sub).delays_for_ordering(
                sub_priority.astype(np.int64))
            assert np.array_equal(alone, whole[members])
