"""Interference-window arithmetic.

A job ``J_k`` can only delay ``J_i`` when their interference windows
``[A_k, A_k + D_k]`` and ``[A_i, A_i + D_i]`` intersect; Section II of
the paper assumes non-overlapping jobs are already excluded from the
higher/lower-priority sets.  Windows are treated as closed intervals,
so windows that merely touch are conservatively considered overlapping.
"""

from __future__ import annotations

import numpy as np


def windows_overlap(a_start: float, a_end: float,
                    b_start: float, b_end: float) -> bool:
    """True iff the closed intervals ``[a_start, a_end]`` and
    ``[b_start, b_end]`` intersect."""
    if a_end < a_start or b_end < b_start:
        raise ValueError("interval end precedes its start")
    return a_start <= b_end and b_start <= a_end


def overlap_matrix(arrivals: np.ndarray, deadlines: np.ndarray) -> np.ndarray:
    """Pairwise window-overlap mask.

    Parameters
    ----------
    arrivals / deadlines:
        ``(n,)`` arrays of absolute arrival times and relative deadlines.

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` boolean, symmetric, with a True diagonal.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    deadlines = np.asarray(deadlines, dtype=float)
    start = arrivals
    end = arrivals + deadlines
    return (start[:, None] <= end[None, :]) & (start[None, :] <= end[:, None])


def window_of(arrival: float, deadline: float) -> tuple[float, float]:
    """The interference window ``[A, A + D]`` of a job."""
    return (arrival, arrival + deadline)
