"""Parallel scenario-sweep engine.

Every experiment in this reproduction -- the Figure 4 panels, the
sensitivity sweeps and the ablations -- evaluates a list of
*scenarios*: (workload config, seed, equation) triples that are
completely independent of one another.  This module shards such lists
across a ``ProcessPoolExecutor`` and merges the results back in input
order, producing **exactly** the objects the serial loops produce:

* :class:`ScenarioSpec` freezes one scenario (generator, workload
  config, seed, equation, approaches, OPT backend).  Seeding is
  deterministic and carried *inside* the spec, so the shard a scenario
  lands on can never change its result.
* :func:`evaluate_scenarios` runs a batch of specs through
  :func:`repro.experiments.runner.evaluate_case`, either in-process
  (``n_workers <= 1``, the degenerate case -- bit-for-bit the serial
  path) or across worker processes with chunked dispatch.
* :func:`parallel_map` is the generic primitive behind the ablations:
  an order-preserving ``map(fn, argtuples)`` over processes for any
  picklable module-level function.

Equivalence guarantee: workers import the same code and receive the
same specs, so for a fixed seed the parallel sweep returns bitwise
identical acceptance flags, delay bounds and notes as the serial
runner, for any worker count (property-tested in
``tests/experiments/test_parallel.py``).  Only wall-clock ``runtime``
measurements differ.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.experiments.runner import APPROACHES, CaseResult, evaluate_case
from repro.workload.edge import EdgeWorkloadConfig, generate_edge_case
from repro.workload.pipeline import (
    PipelineWorkloadConfig,
    generate_pipeline_case,
)

#: Test-case generators a spec can name (must be module-level so specs
#: stay picklable across the process boundary).
GENERATORS: dict[str, Callable] = {
    "edge": generate_edge_case,
    "pipeline": generate_pipeline_case,
}


def default_workers() -> int:
    """Worker count from the ``REPRO_JOBS`` environment variable.

    ``0``/unset mean "serial" (1); the CLI ``--jobs`` flag overrides.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-determined experiment scenario.

    The spec is a pure value object: hashable, picklable, and carrying
    its own seed, so results are independent of scheduling order.
    """

    seed: int
    workload: "EdgeWorkloadConfig | PipelineWorkloadConfig" = field(
        default_factory=EdgeWorkloadConfig)
    generator: str = "edge"
    equation: str = "eq10"
    approaches: tuple[str, ...] = APPROACHES
    opt_backend: str = "highs"

    def generate(self):
        """Materialise the test case (deterministic in ``seed``)."""
        try:
            generate = GENERATORS[self.generator]
        except KeyError:
            raise ValueError(
                f"unknown generator {self.generator!r}; expected one of "
                f"{tuple(GENERATORS)}") from None
        return generate(self.workload, seed=self.seed)


def run_scenario(spec: ScenarioSpec) -> CaseResult:
    """Generate and evaluate one scenario (the worker entry point)."""
    case = spec.generate()
    return evaluate_case(case, approaches=spec.approaches,
                         equation=spec.equation,
                         opt_backend=spec.opt_backend)


def _chunksize(num_items: int, n_workers: int) -> int:
    """Chunked dispatch: a few chunks per worker amortises IPC without
    serialising the tail behind one slow shard."""
    return max(1, num_items // (4 * n_workers))


def evaluate_scenarios(specs: Iterable[ScenarioSpec], *,
                       n_workers: int = 1,
                       chunksize: int | None = None) -> list[CaseResult]:
    """Evaluate scenarios, preserving input order.

    ``n_workers <= 1`` (the degenerate case) runs the exact serial loop
    in-process; anything larger shards the specs across a
    ``ProcessPoolExecutor`` with chunked dispatch.  Either way the
    returned list lines up index-for-index with ``specs``.
    """
    specs = list(specs)
    if n_workers <= 1 or len(specs) <= 1:
        return [run_scenario(spec) for spec in specs]
    if chunksize is None:
        chunksize = _chunksize(len(specs), n_workers)
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(run_scenario, specs, chunksize=chunksize))


def _star_call(payload: tuple[Callable, tuple]) -> Any:
    """Worker shim for :func:`parallel_map` (module-level: picklable)."""
    fn, args = payload
    return fn(*args)


def parallel_map(fn: Callable, argtuples: Sequence[tuple], *,
                 n_workers: int = 1,
                 chunksize: int | None = None) -> list:
    """Order-preserving ``[fn(*args) for args in argtuples]`` over
    processes.

    ``fn`` must be a module-level (picklable) function.  With
    ``n_workers <= 1`` this is literally the serial comprehension, so
    callers get identical results for any worker count as long as
    ``fn`` is deterministic in its arguments.
    """
    argtuples = list(argtuples)
    if n_workers <= 1 or len(argtuples) <= 1:
        return [fn(*args) for args in argtuples]
    if chunksize is None:
        chunksize = _chunksize(len(argtuples), n_workers)
    payloads = [(fn, args) for args in argtuples]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_star_call, payloads, chunksize=chunksize))
