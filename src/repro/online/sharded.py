"""Sharded streaming admission: many cells, one stream.

:class:`ShardedAdmissionEngine` scales the online admission controller
past one resource cluster by partitioning the system's resources into
shards (:class:`~repro.core.partition.ShardMap`) and hosting one
:class:`~repro.online.cell.AdmissionCell` per shard.  Every arrival is
routed by its resource footprint:

* a **shard-local** job (footprint inside one shard) goes through its
  home cell's full controller, exactly like the monolithic engine --
  and because jobs in different shards never share a resource, those
  decisions are *exact*, not approximate (see
  :mod:`repro.core.partition`).
* a **cross-shard** job (footprint spanning shards) is admitted by
  pessimistic two-phase reservation: phase 1 asks every touched cell
  whether the job fits *whole, with no evictions*
  (:meth:`~repro.online.cell.AdmissionCell.reserve`); only if all
  shards accept does phase 2 commit on each
  (:meth:`~repro.online.cell.AdmissionCell.commit_reservation`) --
  otherwise nothing changed anywhere and the job is parked in the
  engine-level cross-shard retry queue.  The invariant is
  all-or-nothing residency: a cross-shard job is admitted on every
  touched shard or on none.
* when a later local arrival evicts a cross-shard visitor from one
  shard, the engine *revokes* it from every other touched shard and
  parks it in the cross-shard queue -- cells never park cross-shard
  jobs themselves (the ``parkable`` hook), because a lone cell
  re-admitting one unilaterally would break the residency invariant.

With ``shards=1`` every job is shard-local and the single cell sees
the identity-restricted universe, so the engine is bitwise identical
to :class:`~repro.online.engine.OnlineAdmissionEngine` -- decisions,
churn, metrics time series -- which the property tests in
``tests/online/test_sharded.py`` replay event-for-event.  The price of
sharding is pessimism on cross-shard jobs only: acceptance ratios stay
within a couple of percent of the monolithic oracle on
cluster-structured workloads while per-event candidate sets (and so
decision cost) shrink by the shard count.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Routing, ShardMap
from repro.core.schedulability import Policy, resolve_equation
from repro.core.segments import SegmentCache
from repro.core.system import JobSet
from repro.online.cell import AdmissionCell
from repro.online.engine import (
    EVENT_ARRIVE,
    EVENT_DEPART,
    OnlineAdmissionEngine,
    OnlineRunResult,
)
from repro.online.metrics import (
    EventRecord,
    OnlineMetrics,
    admitted_utilisation,
)
from repro.online.streams import OnlineStream


class _Shard:
    """One shard's cell plus the global<->local uid translation."""

    def __init__(self, shard: int, cell: AdmissionCell,
                 members: np.ndarray) -> None:
        self.shard = shard
        self.cell = cell
        #: ``members[local] == global`` (ascending global uids).
        self.members = members
        self.local_of = {int(g): i for i, g in enumerate(members)}

    def local(self, uid: int) -> int:
        return self.local_of[uid]

    def globalise(self, locals_: "tuple[int, ...]") -> tuple[int, ...]:
        """Local uid tuple -> global; ascending in, ascending out
        (``members`` is sorted)."""
        return tuple(int(self.members[i]) for i in locals_)


class ShardedAdmissionEngine:
    """Replay one stream through N admission cells.

    Parameters
    ----------
    stream:
        The materialised event stream (uids 0..k-1, like the
        monolithic engine).
    shards:
        Shard count (resources split into contiguous blocks per stage
        via :meth:`~repro.core.partition.ShardMap.blocked`) or a
        pre-built :class:`~repro.core.partition.ShardMap`.
    policy / mode / retry_limit / kernel:
        As for :class:`~repro.online.engine.OnlineAdmissionEngine`;
        ``retry_limit`` bounds each cell's queue *and* the engine's
        cross-shard queue.
    record_decisions:
        Keep ``(index, kind, uid, candidate, result)`` triples (global
        uids) on ``decisions``; cross-shard reservations log one
        ``reserve`` entry per touched shard.
    """

    def __init__(self, stream: OnlineStream, *,
                 shards: "int | ShardMap" = 1,
                 policy: "str | Policy" = Policy.PREEMPTIVE,
                 mode: str = "incremental",
                 retry_limit: int = 16,
                 kernel: str = "paired",
                 record_decisions: bool = False) -> None:
        if retry_limit < 0:
            raise ValueError(
                f"retry_limit must be >= 0, got {retry_limit}")
        self._stream = stream
        self._policy = policy
        self._mode = mode
        self._retry_limit = retry_limit
        self._universe: "JobSet | None" = (
            stream.universe() if stream.events else None)
        self._departure_of = {event.uid: event.departure
                              for event in stream.events}

        if self._universe is not None:
            shard_map = (shards if isinstance(shards, ShardMap)
                         else ShardMap.blocked(self._universe.system,
                                               int(shards)))
            self._shard_map: "ShardMap | None" = shard_map
            self._routing: "Routing | None" = \
                shard_map.route(self._universe)
            cache = (SegmentCache(self._universe)
                     if mode == "incremental" else None)
            self._shards = [
                self._build_shard(shard, cache, retry_limit, kernel)
                for shard in range(shard_map.num_shards)]
        else:
            self._shard_map = None
            self._routing = None
            self._shards = []

        #: (index, kind, uid, candidate, result) log (global uids).
        self.decisions: "list[tuple]" = []
        self._record_decisions = record_decisions

        self._admitted: set[int] = set()
        self._cross_retry: list[int] = []
        self._seen: set[int] = set()
        self._metrics = OnlineMetrics(self._universe)
        self._heaviness: "np.ndarray | None" = None
        #: Cross-shard accounting surfaced in ``summary["sharding"]``.
        self._cross_accepts = 0
        self._cross_rejects = 0
        self._cross_retry_accepts = 0
        self._revocations = 0

    def _build_shard(self, shard: int, cache: "SegmentCache | None",
                     retry_limit: int, kernel: str) -> _Shard:
        routing = self._routing
        members = routing.members(shard)
        if members.size == 0:
            cell = AdmissionCell(None, policy=self._policy,
                                 mode=self._mode,
                                 retry_limit=retry_limit,
                                 kernel=kernel)
            return _Shard(shard, cell, members)
        indices = [int(g) for g in members]
        sub = self._universe.restrict(indices)
        sub_cache = (cache.restrict(sub, indices)
                     if cache is not None else None)
        departure_of = {i: self._departure_of[int(g)]
                        for i, g in enumerate(members)}
        cross = routing.cross

        def parkable(local_uid: int,
                     members=members, cross=cross) -> bool:
            return not bool(cross[int(members[local_uid])])

        cell = AdmissionCell(sub, policy=self._policy,
                             mode=self._mode, retry_limit=retry_limit,
                             departure_of=departure_of,
                             cache=sub_cache, kernel=kernel,
                             parkable=parkable)
        return _Shard(shard, cell, members)

    # -- read-only state ----------------------------------------------

    @property
    def universe(self) -> "JobSet | None":
        return self._universe

    @property
    def shard_map(self) -> "ShardMap | None":
        return self._shard_map

    @property
    def routing(self) -> "Routing | None":
        return self._routing

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def cells(self) -> "list[AdmissionCell]":
        return [shard.cell for shard in self._shards]

    @property
    def admitted(self) -> "frozenset[int]":
        return frozenset(self._admitted)

    @property
    def cross_retry_queue(self) -> "tuple[int, ...]":
        return tuple(self._cross_retry)

    @property
    def decision_seconds(self) -> float:
        return sum(s.cell.decision_seconds for s in self._shards)

    @property
    def decision_count(self) -> int:
        return sum(s.cell.decision_count for s in self._shards)

    # -- shared bookkeeping (mirrors the monolithic engine) -----------

    def _log_decision(self, index: int, kind: str, uid: int,
                      candidate: "tuple[int, ...]",
                      result) -> None:
        if self._record_decisions:
            self.decisions.append(
                (index, kind, uid, tuple(candidate), result))

    def _snapshot(self, index: int, now: float, kind: str, uid: int,
                  decision: str, evicted: "tuple[int, ...]",
                  flips: int, latency: float) -> EventRecord:
        metrics = self._metrics
        record = EventRecord(
            index=index, time=now, kind=kind, uid=uid,
            decision=decision, evicted=evicted,
            admitted=len(self._admitted),
            acceptance_ratio=metrics.acceptance_ratio(),
            rejected_heaviness=metrics.rejected_heaviness(self._seen),
            utilisation=self._utilisation(),
            rank_changes=flips, latency=latency)
        metrics.record(record)
        return record

    def _utilisation(self) -> float:
        if self._universe is None or not self._admitted:
            return 0.0
        if self._heaviness is None:
            from repro.workload.heaviness import heaviness_matrix

            self._heaviness = heaviness_matrix(self._universe)
        mask = np.zeros(self._universe.num_jobs, dtype=bool)
        mask[sorted(self._admitted)] = True
        return admitted_utilisation(self._universe, mask,
                                    heaviness=self._heaviness)

    def _enqueue_cross(self, uid: int) -> None:
        """Park a cross-shard job in the engine-level queue (bounded
        FIFO, same overflow rule as the cells')."""
        if self._retry_limit == 0:
            self._metrics.retry_drops += 1
            return
        self._cross_retry.append(uid)
        if len(self._cross_retry) > self._retry_limit:
            self._cross_retry.pop(0)
            self._metrics.retry_drops += 1

    def _touched(self, uid: int) -> "list[_Shard]":
        return [self._shards[s] for s in self._routing.touched[uid]]

    # -- local (single-shard) arrivals --------------------------------

    def _local_arrival(self, index: int, now: float, uid: int,
                       home: _Shard) -> None:
        event = home.cell.arrival(home.local(uid))
        evicted = home.globalise(event.evicted)
        self._log_decision(index, "arrive", uid,
                           home.globalise(event.candidate),
                           event.result)
        if event.decision == "accept":
            self._admitted.add(uid)
        for g in evicted:
            self._admitted.discard(g)
        self._metrics.ever_admitted |= self._admitted
        self._metrics.evictions += len(evicted)
        self._metrics.rank_changes += event.flips
        self._metrics.retry_drops += event.retry_drops
        # Cross-shard evictees the cell could not park: revoke their
        # residency on every other touched shard, then park here.
        for local_uid in event.escalated:
            g = int(home.members[local_uid])
            if g == uid:
                self._enqueue_cross(g)
                continue
            for other in self._touched(g):
                if other.shard != home.shard:
                    if other.cell.evict(other.local(g)):
                        self._revocations += 1
            self._enqueue_cross(g)
        self._snapshot(index, now, "arrive", uid, event.decision,
                       evicted, event.flips, event.seconds)

    # -- cross-shard arrivals (two-phase reservation) -----------------

    def _cross_arrival(self, index: int, now: float, uid: int,
                       *, kind: str = "arrive") -> bool:
        """Two-phase reservation of ``uid`` on every touched shard.
        Returns acceptance; on rejection nothing changed anywhere."""
        touched = self._touched(uid)
        reservations = []
        seconds = 0.0
        for shard in touched:
            reservation = shard.cell.reserve(shard.local(uid))
            self._log_decision(index, "reserve", uid,
                               shard.globalise(reservation.candidate),
                               reservation.result)
            reservations.append((shard, reservation))
            if not reservation.accepted:
                # Abort: phase 1 is pure, so the earlier shards need
                # no rollback.  Failed retry attempts leave no record,
                # matching the monolithic engine's retry pass.
                if kind == "arrive":
                    self._snapshot(index, now, kind, uid, "reject",
                                   (), 0, seconds)
                return False
        flips = 0
        for shard, reservation in reservations:
            event = shard.cell.commit_reservation(reservation)
            flips += event.flips
            seconds += event.seconds
        self._admitted.add(uid)
        self._metrics.ever_admitted |= self._admitted
        self._metrics.rank_changes += flips
        self._snapshot(index, now, kind, uid, "accept", (), flips,
                       seconds)
        return True

    def _on_arrival(self, index: int, now: float, uid: int) -> None:
        self._seen.add(uid)
        self._metrics.arrivals += 1
        if not self._routing.cross[uid]:
            home = self._shards[int(self._routing.home[uid])]
            self._local_arrival(index, now, uid, home)
            return
        if self._cross_arrival(index, now, uid):
            self._cross_accepts += 1
        else:
            self._cross_rejects += 1
            self._enqueue_cross(uid)

    # -- departures and retries ---------------------------------------

    def _on_departure(self, index: int, now: float, uid: int) -> None:
        if uid in self._admitted:
            self._admitted.discard(uid)
            seconds = 0.0
            for shard in self._touched(uid):
                event = shard.cell.departure(shard.local(uid))
                seconds += event.seconds
            self._snapshot(index, now, "depart", uid, "free", (), 0,
                           seconds)
            self._retry_pass(index, now, self._touched(uid))
            return
        if uid in self._cross_retry:
            self._cross_retry.remove(uid)
            self._metrics.expired += 1
            self._snapshot(index, now, "depart", uid, "expire", (),
                           0, 0.0)
            return
        decision = "noop"
        seconds = 0.0
        if not self._routing.cross[uid]:
            home = self._shards[int(self._routing.home[uid])]
            event = home.cell.departure(home.local(uid))
            decision = event.decision  # "expire" (parked) or "noop"
            seconds = event.seconds
            if decision == "expire":
                self._metrics.expired += 1
        self._snapshot(index, now, "depart", uid, decision, (), 0,
                       seconds)

    def _retry_pass(self, index: int, now: float,
                    touched: "list[_Shard]") -> None:
        """Re-admission after freed capacity: each touched cell's own
        FIFO pass first (ascending shard order), then the engine's
        cross-shard queue through fresh two-phase reservations."""
        for shard in touched:
            for event in shard.cell.retry_pass(now):
                uid = int(shard.members[event.uid])
                self._log_decision(index, "retry", uid,
                                   shard.globalise(event.candidate),
                                   event.result)
                if event.result is None:
                    continue
                self._admitted.add(uid)
                self._metrics.ever_admitted |= self._admitted
                self._metrics.rank_changes += event.flips
                self._metrics.retry_accepts += 1
                self._snapshot(index, now, "retry", uid, "accept",
                               (), event.flips, event.seconds)
        for uid in list(self._cross_retry):
            if self._departure_of[uid] <= now:
                continue  # its own departure event expires it
            if self._cross_arrival(index, now, uid, kind="retry"):
                self._cross_retry.remove(uid)
                self._metrics.retry_accepts += 1
                self._cross_retry_accepts += 1

    # -- driver -------------------------------------------------------

    def _sharding_summary(self) -> dict:
        routing = self._routing
        per_shard = []
        for shard in self._shards:
            members = shard.members
            per_shard.append({
                "shard": shard.shard,
                "jobs": int(members.size),
                "local_jobs": (int(routing.local_jobs(
                    shard.shard).size) if routing else 0),
                "admitted": len(shard.cell.admitted),
                "decisions": shard.cell.decision_count,
            })
        return {
            "shards": len(self._shards),
            "cross_jobs": routing.num_cross if routing else 0,
            "cross_accepts": self._cross_accepts,
            "cross_rejects": self._cross_rejects,
            "cross_retry_accepts": self._cross_retry_accepts,
            "revocations": self._revocations,
            "per_shard": per_shard,
        }

    def run(self) -> OnlineRunResult:
        """Process every event chronologically and return the result."""
        config = self._stream.config
        events = []
        for event in self._stream.events:
            events.append((event.arrival, EVENT_ARRIVE, event.uid))
            events.append((event.departure, EVENT_DEPART, event.uid))
        events.sort()
        for index, (now, kind, uid) in enumerate(events):
            if kind == EVENT_ARRIVE:
                self._on_arrival(index, now, uid)
            else:
                self._on_departure(index, now, uid)
        summary = self._metrics.summary()
        summary["sharding"] = self._sharding_summary()
        return OnlineRunResult(
            seed=self._stream.seed,
            stream_kind=config.kind,
            policy=resolve_equation(self._policy),
            mode=self._mode,
            horizon=float(config.horizon),
            records=self._metrics.records,
            summary=summary,
            final_admitted=sorted(self._admitted),
            shards=len(self._shards))


def sharded_acceptance_report(stream: OnlineStream, *,
                              shards: "int | ShardMap",
                              policy: "str | Policy" = Policy.PREEMPTIVE,
                              mode: str = "incremental",
                              retry_limit: int = 16,
                              kernel: str = "paired") -> dict:
    """Acceptance of the sharded engine vs the monolithic oracle.

    Runs the same stream through both engines and reports their
    acceptance ratios plus the (signed) delta -- the cost of
    pessimistic cross-shard reservation.  ``acceptance_delta`` is
    sharded minus oracle, so more negative means more pessimism.
    """
    oracle = OnlineAdmissionEngine(
        stream, policy=policy, mode=mode, retry_limit=retry_limit,
        kernel=kernel).run()
    sharded = ShardedAdmissionEngine(
        stream, shards=shards, policy=policy, mode=mode,
        retry_limit=retry_limit, kernel=kernel).run()
    oracle_ratio = float(oracle.summary["acceptance_ratio"])
    sharded_ratio = float(sharded.summary["acceptance_ratio"])
    return {
        "shards": sharded.summary["sharding"]["shards"],
        "cross_jobs": sharded.summary["sharding"]["cross_jobs"],
        "oracle_acceptance": oracle_ratio,
        "sharded_acceptance": sharded_ratio,
        "acceptance_delta": sharded_ratio - oracle_ratio,
    }
