"""Tests for the single-resource bounds (Eqs. 1-2), anchored on the
paper's Example 1."""

import pytest

from repro.core.dca import DelayAnalyzer
from repro.core.exceptions import ModelError
from repro.core.system import JobSet
from tests.conftest import EXAMPLE1_PROCESSING, as_mask


@pytest.fixture
def analyzer(example1_jobset):
    return DelayAnalyzer(example1_jobset)


class TestExample1:
    """Exact values quoted in Observation IV.2 / Example 1."""

    def test_delta2_is_92_under_original_ordering(self, analyzer):
        # Priority ordering J1 > J2 > J3 > J4 (indices 0..3).
        higher = as_mask(4, [0])
        lower = as_mask(4, [2, 3])
        assert analyzer.eq2(1, higher, lower) == pytest.approx(92.0)

    def test_delta2_drops_to_87_after_swap(self, analyzer):
        # Swapping J2 and J3: J1 > J3 > J2 > J4.
        higher = as_mask(4, [0, 2])
        lower = as_mask(4, [3])
        assert analyzer.eq2(1, higher, lower) == pytest.approx(87.0)

    def test_swap_shows_opa_incompatibility(self, analyzer):
        """Giving J2 a *lower* priority reduced its delay bound -- the
        third OPA-compatibility condition is violated by Eq. 2."""
        original = analyzer.eq2(1, as_mask(4, [0]), as_mask(4, [2, 3]))
        swapped = analyzer.eq2(1, as_mask(4, [0, 2]), as_mask(4, [3]))
        assert swapped < original

    def test_footnote9_dm_is_not_optimal(self):
        """Footnote 9: with D1 = 60 DM gives J1 the lowest priority and
        Delta_1 = 82 (preemptive, same arrivals)."""
        jobset = JobSet.single_resource(
            processing=EXAMPLE1_PROCESSING,
            deadlines=[60, 55, 55, 50], preemptive=True)
        analyzer = DelayAnalyzer(jobset)
        delta1 = analyzer.eq1(0, as_mask(4, [1, 2, 3]))
        assert delta1 == pytest.approx(82.0)


class TestEq1:
    def test_no_interference_is_sum_of_t1_and_stage_terms(self, analyzer):
        # Alone, Delta_1 <= t_{1,1} + P_{1,1} + P_{1,2}.
        assert analyzer.eq1(0, as_mask(4, [])) == \
            pytest.approx(15 + 5 + 7)

    def test_higher_priority_adds_t1_and_stage_maxima(self, analyzer):
        # J2 with H = {J1}: t1 sums 17+15, stage maxima max(5,7)+max(7,9).
        assert analyzer.eq1(1, as_mask(4, [0])) == \
            pytest.approx(32 + 7 + 9)

    def test_later_arrival_contributes_t2(self):
        jobset = JobSet.single_resource(
            processing=EXAMPLE1_PROCESSING,
            deadlines=[200] * 4,
            arrivals=[0, 10, 0, 0])
        analyzer = DelayAnalyzer(jobset)
        base_jobset = JobSet.single_resource(
            processing=EXAMPLE1_PROCESSING, deadlines=[200] * 4)
        base = DelayAnalyzer(base_jobset).eq1(0, as_mask(4, [1]))
        with_offset = analyzer.eq1(0, as_mask(4, [1]))
        # J2 (t2 = 9) joins after J1, adding one t_{k,2} term.
        assert with_offset == pytest.approx(base + 9)

    def test_lower_priority_jobs_do_not_matter(self, analyzer):
        only_higher = analyzer.eq1(1, as_mask(4, [0]))
        assert analyzer.delay_bound(1, as_mask(4, [0]), as_mask(4, [2]),
                                    equation="eq1") == \
            pytest.approx(only_higher)

    def test_rejects_msmr_system(self, fig2_jobset):
        analyzer = DelayAnalyzer(fig2_jobset)
        with pytest.raises(ModelError, match="single-resource"):
            analyzer.eq1(0, as_mask(4, []))


class TestEq2:
    def test_blocking_term_over_all_stages(self, analyzer):
        # J1 highest: H empty, L = {J2, J3, J4}.
        # t_{1,1} + sum_{j<3} P_{1,j} + sum_j max_L P.
        expected = 15 + (5 + 7) + (7 + 9 + 30)
        assert analyzer.eq2(0, as_mask(4, []), as_mask(4, [1, 2, 3])) == \
            pytest.approx(expected)

    def test_empty_lower_set_means_no_blocking(self, analyzer):
        bound = analyzer.eq2(3, as_mask(4, [0, 1, 2]), as_mask(4, []))
        # Q = all four jobs; no blocking term.
        expected = (15 + 17 + 30 + 4) + (7 + 9)
        assert bound == pytest.approx(expected)

    def test_eq2_requires_lower_argument_via_delay_bound(self, analyzer):
        with pytest.raises(ValueError, match="lower"):
            analyzer.delay_bound(0, as_mask(4, []), equation="eq2")


class TestWindowFiltering:
    def test_non_overlapping_job_is_ignored(self):
        jobset = JobSet.single_resource(
            processing=[(5, 5), (5, 5)],
            deadlines=[10, 10],
            arrivals=[0, 1000])
        analyzer = DelayAnalyzer(jobset)
        with_far_job = analyzer.eq1(0, as_mask(2, [1]))
        alone = analyzer.eq1(0, as_mask(2, []))
        assert with_far_job == pytest.approx(alone)

    def test_filter_can_be_disabled(self):
        jobset = JobSet.single_resource(
            processing=[(5, 5), (5, 5)],
            deadlines=[10, 10],
            arrivals=[0, 1000])
        analyzer = DelayAnalyzer(jobset, window_filter=False)
        with_far_job = analyzer.eq1(0, as_mask(2, [1]))
        alone = analyzer.eq1(0, as_mask(2, []))
        assert with_far_job > alone
