"""Discrete-event simulator for MSMR pipelines.

Simulates the exact system model of Section II: jobs enter stage 1 at
their arrival times, proceed through the stages in order, and at every
stage queue for the single resource they are mapped to.  Each resource
schedules by fixed priority -- preemptively or non-preemptively
according to its stage -- under any :mod:`repro.sim.policies` policy.

The simulator serves three roles in the reproduction:

* it *is* the DCMP baseline's acceptance test (the paper simulates the
  decomposed jobs because no analytical test exists for them);
* it validates the DCA bounds empirically (simulated delay <= bound for
  total orderings -- ablation A3);
* it powers the runnable examples (traces, Gantt strips).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.core.exceptions import SimulationError
from repro.core.system import JobSet
from repro.sim.metrics import SimulationResult
from repro.sim.policies import DispatchPolicy, make_policy
from repro.sim.trace import ExecutionInterval, Trace

#: Event kinds, ordered so completions at time t are handled before
#: arrivals at time t (a freed resource is re-dispatched first).
_COMPLETE, _ARRIVE = 0, 1


class _Resource:
    """Runtime state of one resource."""

    __slots__ = ("stage", "index", "ready", "running", "run_start", "token")

    def __init__(self, stage: int, index: int) -> None:
        self.stage = stage
        self.index = index
        self.ready: list[int] = []
        self.running: int | None = None
        self.run_start = 0.0
        self.token = 0


class PipelineSimulator:
    """Event-driven execution of a job set under a dispatch policy.

    Parameters
    ----------
    jobset:
        The job set (arrivals, processing times, mapping).
    policy:
        A :class:`~repro.sim.policies.DispatchPolicy`, or anything
        :func:`~repro.sim.policies.make_policy` accepts (a
        :class:`PriorityOrdering`, a :class:`PairwiseAssignment`, a rank
        vector, or a per-stage rank matrix).
    preemptive:
        Per-stage preemption flags; defaults to the system's stage
        flags.
    max_events:
        Safety valve against runaway simulations.
    arrival_order:
        Order in which the initial arrival events are *inserted* into
        the event queue (a permutation of the job indices; default
        ``0..n-1``).  Simulation semantics must not depend on
        insertion order -- the instant-batch dispatch absorbs every
        event at a time point before dispatching -- and the
        property tests drive this knob to prove trace invariance.
    """

    def __init__(self, jobset: JobSet, policy, *,
                 preemptive: "list[bool] | None" = None,
                 max_events: int | None = None,
                 arrival_order: "list[int] | None" = None) -> None:
        self._jobset = jobset
        self._policy: DispatchPolicy = (
            policy if hasattr(policy, "select") and hasattr(policy, "beats")
            else make_policy(policy))
        if preemptive is None:
            preemptive = list(jobset.system.preemptive_flags)
        if len(preemptive) != jobset.num_stages:
            raise ValueError(
                f"{len(preemptive)} preemption flags for "
                f"{jobset.num_stages} stages")
        self._preemptive = list(preemptive)
        n_events_floor = jobset.num_jobs * jobset.num_stages * 8
        self._max_events = max_events or max(100_000, n_events_floor * 4)
        if arrival_order is None:
            arrival_order = list(range(jobset.num_jobs))
        if sorted(arrival_order) != list(range(jobset.num_jobs)):
            raise ValueError(
                f"arrival_order must be a permutation of "
                f"0..{jobset.num_jobs - 1}, got {arrival_order}")
        self._arrival_order = list(arrival_order)

    def run(self) -> SimulationResult:
        """Simulate to completion and return the measured result."""
        jobset = self._jobset
        n, num_stages = jobset.num_jobs, jobset.num_stages
        resources = {
            (stage, index): _Resource(stage, index)
            for stage in range(num_stages)
            for index in range(jobset.system.stages[stage].num_resources)
        }
        remaining = jobset.P.astype(float).copy()
        finish = np.full(n, np.nan)
        trace = Trace()
        counter = itertools.count()
        events: list[tuple] = []

        def push(time: float, kind: int, job: int, stage: int,
                 token: int = -1) -> None:
            heapq.heappush(events, (time, kind, next(counter), job, stage,
                                    token))

        def resource_of(job: int, stage: int) -> _Resource:
            return resources[(stage, int(jobset.R[job, stage]))]

        def record(job: int, res: _Resource, start: float, end: float,
                   completed: bool) -> None:
            if end > start or completed:
                trace.add(ExecutionInterval(
                    job=job, stage=res.stage, resource=res.index,
                    start=start, end=end, completed=completed))

        def start_next(res: _Resource, now: float) -> None:
            if res.running is not None or not res.ready:
                return
            job = self._policy.select(res.ready, res.stage)
            res.ready.remove(job)
            res.running = job
            res.run_start = now
            res.token += 1
            push(now + remaining[job, res.stage], _COMPLETE, job,
                 res.stage, res.token)

        def preempt(res: _Resource, now: float) -> None:
            job = res.running
            assert job is not None
            remaining[job, res.stage] -= now - res.run_start
            record(job, res, res.run_start, now, completed=False)
            res.ready.append(job)
            res.running = None
            res.token += 1  # invalidate the pending completion

        for job in self._arrival_order:
            push(float(jobset.A[job]), _ARRIVE, job, 0)

        processed = 0
        while events:
            time = events[0][0]
            touched: dict[tuple[int, int], _Resource] = {}

            # Phase 1: absorb every event at this instant, so that
            # simultaneous arrivals (e.g. the batch release of the edge
            # workload) compete before any dispatch decision is taken.
            while events and events[0][0] == time:
                processed += 1
                if processed > self._max_events:
                    raise SimulationError(
                        f"exceeded {self._max_events} events; "
                        f"simulation is likely stuck")
                _, kind, _, job, stage, token = heapq.heappop(events)
                res = resource_of(job, stage)
                if kind == _ARRIVE:
                    res.ready.append(job)
                    touched[(res.stage, res.index)] = res
                    continue
                # Completion: only valid if the token is still current.
                if token != res.token or res.running != job:
                    continue
                record(job, res, res.run_start, time, completed=True)
                remaining[job, stage] = 0.0
                res.running = None
                res.token += 1
                if stage + 1 < num_stages:
                    push(time, _ARRIVE, job, stage + 1)
                else:
                    finish[job] = time
                touched[(res.stage, res.index)] = res

            # Phase 2: dispatch on every touched resource (preempting
            # first where allowed).  Zero-length executions complete at
            # the same instant; the outer loop picks them up as a new
            # batch at the same time value.
            for res in touched.values():
                if (res.running is not None and res.ready
                        and self._preemptive[res.stage]):
                    best = self._policy.select(res.ready, res.stage)
                    if self._policy.beats(best, res.running, res.stage):
                        preempt(res, time)
                start_next(res, time)

        if np.isnan(finish).any():
            missing = [int(i) for i in np.flatnonzero(np.isnan(finish))]
            raise SimulationError(f"jobs never finished: {missing}")
        return SimulationResult(jobset=jobset, finish_times=finish,
                                trace=trace)


def simulate(jobset: JobSet, priorities, *,
             preemptive: "list[bool] | None" = None) -> SimulationResult:
    """One-shot convenience wrapper around :class:`PipelineSimulator`."""
    return PipelineSimulator(jobset, priorities,
                             preemptive=preemptive).run()
