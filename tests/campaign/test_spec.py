"""Campaign spec validation, (de)serialisation and expansion."""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    AXIS_NAMES,
    CampaignError,
    CampaignSpec,
    campaign_hash,
    expand,
    load_campaign,
    manifest,
    save_campaign,
)
from repro.campaign.spec import DEFAULT_AXES, tomllib

REPO_ROOT = Path(__file__).resolve().parents[2]

TINY_WORKLOAD = {"edge": {"num_aps": 4, "num_servers": 3}}


def tiny_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="tiny",
        axes={"family": ("edge", "poisson"), "jobs": (6, 8),
              "seed": (0, 1)},
        approaches=("dm", "dmr"),
        horizon=20.0,
        rate=0.3,
        workload=TINY_WORKLOAD,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(CampaignError, match="unknown axis"):
            CampaignSpec(axes={"frequency": (1, 2)})

    def test_unknown_family_rejected(self):
        with pytest.raises(CampaignError, match="unknown family"):
            CampaignSpec(axes={"family": ("edge", "galactic")})

    def test_replay_family_rejected(self):
        # Replay streams need an external trace file; campaigns must
        # stay self-contained value objects.
        with pytest.raises(CampaignError, match="unknown family"):
            CampaignSpec(axes={"family": ("replay",)})

    def test_bad_equation_rejected(self):
        with pytest.raises(CampaignError, match="unknown equation"):
            CampaignSpec(axes={"equation": ("eq7",)})

    def test_bad_policy_rejected(self):
        with pytest.raises(CampaignError, match="unknown policy"):
            CampaignSpec(axes={"policy": ("fifo",)})

    def test_bad_backend_rejected(self):
        with pytest.raises(CampaignError, match="unknown opt backend"):
            CampaignSpec(axes={"opt_backend": ("gurobi",)})

    def test_jobs_must_be_positive_ints(self):
        for bad in (0, -3, 2.5, "10", True):
            with pytest.raises(CampaignError, match="positive integer"):
                CampaignSpec(axes={"jobs": (bad,)})

    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError, match="no values"):
            CampaignSpec(axes={"jobs": ()})

    def test_duplicate_values_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            CampaignSpec(axes={"seed": (1, 1)})

    def test_unknown_workload_section_rejected(self):
        with pytest.raises(CampaignError, match="workload section"):
            CampaignSpec(workload={"cloud": {}})

    def test_bad_mode_rejected(self):
        with pytest.raises(CampaignError, match="mode"):
            CampaignSpec(mode="lazy")

    def test_exclude_unknown_axis_rejected(self):
        with pytest.raises(CampaignError, match="unknown axis"):
            tiny_spec(exclude=({"frequency": (1,)},))

    def test_exclude_undeclared_value_is_contradictory(self):
        with pytest.raises(CampaignError, match="contradictory"):
            tiny_spec(exclude=({"jobs": (99,)},))

    def test_exclude_empty_clause_rejected(self):
        with pytest.raises(CampaignError, match="non-empty"):
            tiny_spec(exclude=({},))

    def test_excludes_eliminating_everything_rejected(self):
        spec = tiny_spec(exclude=({"family": ("edge", "poisson")},))
        with pytest.raises(CampaignError, match="eliminate"):
            expand(spec)

    def test_unknown_approach_rejected(self):
        with pytest.raises(CampaignError, match="unknown approach"):
            CampaignSpec(approaches=("dm", "opdca", "typo"))

    def test_empty_approaches_rejected(self):
        with pytest.raises(CampaignError, match="no approaches"):
            CampaignSpec(approaches=())


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = tiny_spec(exclude=({"family": ("edge",),
                                   "jobs": (6,)},))
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip_identity(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "campaign.json"
        save_campaign(spec, path)
        assert load_campaign(path) == spec

    def test_json_text_round_trip_identity(self):
        spec = tiny_spec()
        text = json.dumps(spec.to_dict())
        assert CampaignSpec.from_dict(json.loads(text)) == spec

    @pytest.mark.skipif(tomllib is None,
                        reason="tomllib needs Python >= 3.11")
    def test_toml_file_loads(self, tmp_path):
        path = tmp_path / "campaign.toml"
        path.write_text(
            'name = "toml-campaign"\n'
            "[axes]\n"
            'family = ["edge"]\n'
            "jobs = [6]\n"
            "seed = [0, 1]\n"
            "[workload.edge]\n"
            "num_aps = 4\n"
            "num_servers = 3\n")
        spec = load_campaign(path)
        assert spec.name == "toml-campaign"
        assert spec.axes["jobs"] == (6,)
        # TOML and JSON declarations of the same campaign are the
        # same value object (and hash identically).
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert campaign_hash(clone) == campaign_hash(spec)


class TestMalformedFiles:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign spec"):
            load_campaign(tmp_path / "nope.json")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json!")
        with pytest.raises(CampaignError, match="malformed JSON"):
            load_campaign(path)

    @pytest.mark.skipif(tomllib is None,
                        reason="tomllib needs Python >= 3.11")
    def test_malformed_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("name = [unterminated")
        with pytest.raises(CampaignError, match="malformed TOML"):
            load_campaign(path)

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: nope")
        with pytest.raises(CampaignError, match="extension"):
            load_campaign(path)

    def test_non_mapping_top_level(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CampaignError, match="mapping"):
            load_campaign(path)

    def test_unknown_top_level_keys(self):
        with pytest.raises(CampaignError, match="unknown campaign"):
            CampaignSpec.from_dict({"name": "x", "iterations": 5})

    def test_foreign_format_rejected(self):
        with pytest.raises(CampaignError, match="format"):
            CampaignSpec.from_dict({"format": "something-else"})

    def test_future_version_rejected(self):
        with pytest.raises(CampaignError, match="version"):
            CampaignSpec.from_dict({"version": 99})


class TestExpansion:
    def test_deterministic(self):
        spec = tiny_spec()
        first = expand(spec)
        second = expand(spec)
        assert [s.point for s in first] == [s.point for s in second]
        assert [s.spec for s in first] == [s.spec for s in second]

    def test_counts_and_kinds(self):
        scenarios = expand(tiny_spec())
        assert len(scenarios) == 8  # 2 families x 2 jobs x 2 seeds
        assert sum(s.kind == "batch" for s in scenarios) == 4
        assert sum(s.kind == "online" for s in scenarios) == 4

    def test_irrelevant_axes_collapse(self):
        # Two equations only multiply the batch scenarios: online
        # scenarios ignore `equation`, so they materialise once.
        spec = tiny_spec(axes={"family": ("edge", "poisson"),
                               "equation": ("eq6", "eq10"),
                               "seed": (0, 1)})
        scenarios = expand(spec)
        batch = [s for s in scenarios if s.kind == "batch"]
        online = [s for s in scenarios if s.kind == "online"]
        assert len(batch) == 4   # 2 equations x 2 seeds
        assert len(online) == 2  # equation collapsed: 2 seeds only
        assert {s.spec.equation for s in batch} == {"eq6", "eq10"}

    def test_points_carry_only_relevant_axes(self):
        for scenario in expand(tiny_spec()):
            if scenario.kind == "batch":
                assert "policy" not in scenario.point
                assert scenario.point["equation"] == "eq10"
            else:
                assert "equation" not in scenario.point
                assert "opt_backend" not in scenario.point
                assert scenario.point["policy"] == "preemptive"

    def test_excludes_drop_matching_points(self):
        spec = tiny_spec(exclude=({"family": ("edge",),
                                   "jobs": (6,)},))
        scenarios = expand(spec)
        assert len(scenarios) == 6
        assert not any(s.point["family"] == "edge" and
                       s.point["jobs"] == 6 for s in scenarios)

    def test_exclude_on_irrelevant_axis_spares_the_family(self):
        # `policy` is irrelevant to batch families: the clause must
        # trim online points only, never silently delete every edge
        # scenario (which an exclusion-before-collapse check would).
        spec = tiny_spec(
            axes={"family": ("edge", "poisson"), "jobs": (8,),
                  "policy": ("preemptive", "edge"), "seed": (0,)},
            exclude=({"family": ("edge",),
                      "policy": ("preemptive",)},))
        with pytest.raises(CampaignError, match="never match"):
            # ...and because batch families never consume `policy`,
            # this clause matches nothing at all: contradictory.
            expand(spec)

    def test_exclude_policy_trims_online_only(self):
        spec = tiny_spec(
            axes={"family": ("edge", "poisson"), "jobs": (8,),
                  "policy": ("preemptive", "edge"), "seed": (0,)},
            exclude=({"policy": ("edge",)},))
        scenarios = expand(spec)
        batch = [s for s in scenarios if s.kind == "batch"]
        online = [s for s in scenarios if s.kind == "online"]
        assert len(batch) == 1  # edge family untouched
        assert [s.point["policy"] for s in online] == ["preemptive"]

    def test_dead_exclude_clause_is_contradictory(self):
        # A batch-only campaign cannot be trimmed by a policy clause:
        # the clause matches no grid point and must be rejected, not
        # silently ignored.
        spec = tiny_spec(
            axes={"family": ("edge",), "jobs": (6, 8), "seed": (0,),
                  "policy": ("preemptive", "edge")},
            exclude=({"policy": ("edge",)},))
        with pytest.raises(CampaignError, match="never match"):
            expand(spec)

    def test_jobs_axis_reaches_the_generators(self):
        for scenario in expand(tiny_spec()):
            if scenario.kind == "batch":
                assert scenario.spec.workload.num_jobs == \
                    scenario.point["jobs"]
            else:
                assert scenario.spec.stream.pool_size == \
                    scenario.point["jobs"]

    def test_workload_overrides_reach_the_configs(self):
        scenarios = expand(tiny_spec())
        edge = next(s for s in scenarios if s.kind == "batch")
        assert edge.spec.workload.num_aps == 4
        assert edge.spec.workload.num_servers == 3

    def test_bad_workload_override_fails_at_expand(self):
        spec = tiny_spec(workload={"edge": {"num_reactors": 2}})
        with pytest.raises(CampaignError, match="workload overrides"):
            expand(spec)

    def test_bad_stream_override_fails_at_expand(self):
        spec = tiny_spec(workload={"stream": {"warp_factor": 9}})
        with pytest.raises(CampaignError, match="stream config"):
            expand(spec)

    def test_axis_owned_stream_override_rejected(self):
        spec = tiny_spec(workload={"stream": {"pool_size": 4}})
        with pytest.raises(CampaignError, match="'jobs' axes"):
            expand(spec)

    def test_stream_overrides_win_over_spec_knobs(self):
        spec = tiny_spec(workload={**TINY_WORKLOAD,
                                   "stream": {"horizon": 15.0}})
        online = [s for s in expand(spec) if s.kind == "online"]
        assert all(s.spec.stream.horizon == 15.0 for s in online)


class TestManifestAndHash:
    def test_manifest_spec_round_trips(self):
        spec = tiny_spec()
        data = manifest(spec)
        assert CampaignSpec.from_dict(data["spec"]) == spec
        assert data["scenarios"] == 8
        assert data["batch_scenarios"] == 4
        assert data["online_scenarios"] == 4
        assert data["grid_points"] == 8

    def test_manifest_is_json_ready(self):
        text = json.dumps(manifest(tiny_spec()), sort_keys=True)
        assert "campaign_hash" in text

    def test_hash_stable_and_sensitive(self):
        spec = tiny_spec()
        assert campaign_hash(spec) == campaign_hash(tiny_spec())
        changed = tiny_spec(axes={"family": ("edge",), "jobs": (6, 8),
                                  "seed": (0, 1)})
        assert campaign_hash(changed) != campaign_hash(spec)

    def test_default_axes_cover_every_axis(self):
        assert tuple(DEFAULT_AXES) == AXIS_NAMES
        effective = CampaignSpec().effective_axes()
        assert tuple(effective) == AXIS_NAMES


class TestRepoCampaignFiles:
    def test_smoke_campaign(self):
        spec = load_campaign(REPO_ROOT / "examples/campaigns/smoke.json")
        assert len(spec.declared_axes()) == 3
        assert len(expand(spec)) == 12

    def test_demo_campaign_is_three_axes_48_plus(self):
        spec = load_campaign(REPO_ROOT / "examples/campaigns/demo.json")
        assert len(spec.declared_axes()) == 3
        scenarios = expand(spec)
        assert len(scenarios) >= 48
        points = [tuple(sorted(s.point.items())) for s in scenarios]
        assert len(set(points)) == len(points)  # no duplicates


# -- property: spec -> JSON -> spec is the identity --------------------

_axis_values = st.fixed_dictionaries({}, optional={
    "family": st.lists(st.sampled_from(("edge", "pipeline", "poisson",
                                        "mmpp", "diurnal")),
                       min_size=1, max_size=3, unique=True),
    "jobs": st.lists(st.integers(1, 40), min_size=1, max_size=3,
                     unique=True),
    "equation": st.lists(st.sampled_from(("eq1", "eq5", "eq6", "eq10")),
                         min_size=1, max_size=2, unique=True),
    "policy": st.lists(st.sampled_from(("preemptive", "nonpreemptive",
                                        "edge", "eq10")),
                       min_size=1, max_size=2, unique=True),
    "opt_backend": st.lists(st.sampled_from(("highs", "branch_bound")),
                            min_size=1, max_size=2, unique=True),
    "seed": st.lists(st.integers(0, 1000), min_size=1, max_size=4,
                     unique=True),
})


@settings(max_examples=25, deadline=None)
@given(axes=_axis_values,
       name=st.text(alphabet="abcdefghij-", min_size=1, max_size=12),
       retry_limit=st.integers(0, 64),
       horizon=st.floats(1.0, 500.0, allow_nan=False),
       rate=st.floats(0.01, 2.0, allow_nan=False))
def test_property_spec_json_round_trip_identity(axes, name,
                                                retry_limit, horizon,
                                                rate):
    spec = CampaignSpec(name=name, axes=axes,
                        retry_limit=retry_limit, horizon=horizon,
                        rate=rate, workload=TINY_WORKLOAD)
    through_json = json.loads(json.dumps(spec.to_dict()))
    assert CampaignSpec.from_dict(through_json) == spec


class TestShardsAndKernel:
    def test_shards_axis_expands_online_only(self):
        spec = tiny_spec(axes={"family": ("edge", "poisson"),
                               "shards": (1, 2), "seed": (0,)})
        scenarios = expand(spec)
        batch = [s for s in scenarios if s.kind == "batch"]
        online = [s for s in scenarios if s.kind == "online"]
        assert len(batch) == 1   # shards collapsed for batch families
        assert len(online) == 2
        assert {s.spec.shards for s in online} == {1, 2}
        assert all("shards" not in s.point for s in batch)
        assert all(s.point["shards"] in (1, 2) for s in online)

    def test_shards_axis_defaults_to_one(self):
        for scenario in expand(tiny_spec()):
            if scenario.kind == "online":
                assert scenario.spec.shards == 1

    def test_shards_axis_validation(self):
        base = {"family": ("poisson",), "seed": (0,)}
        with pytest.raises(CampaignError, match="positive integers"):
            tiny_spec(axes={**base, "shards": (0,)})
        with pytest.raises(CampaignError, match="positive integers"):
            tiny_spec(axes={**base, "shards": (True,)})
        with pytest.raises(CampaignError, match="positive integers"):
            tiny_spec(axes={**base, "shards": ("two",)})

    def test_kernel_knob_round_trips(self):
        # Every tier in the shared registry -- including "compiled"
        # and "auto" -- is a valid campaign value: the knob is
        # resolved at run time, not at spec validation (a spec
        # written on a numba machine must still load elsewhere).
        from repro.core.kernels import KERNEL_TIERS

        for kernel in KERNEL_TIERS:
            spec = tiny_spec(kernel=kernel)
            payload = spec.to_dict()
            assert payload["kernel"] == kernel
            assert CampaignSpec.from_dict(payload) == spec
            assert campaign_hash(spec) == campaign_hash(
                CampaignSpec.from_dict(payload))
        # the default serialises too (explicit beats implicit)
        assert tiny_spec().to_dict()["kernel"] == "paired"

    def test_kernel_knob_validation(self):
        with pytest.raises(CampaignError, match="kernel"):
            tiny_spec(kernel="fast")

    def test_kernel_knob_reaches_online_scenarios(self):
        spec = tiny_spec(kernel="reference")
        for scenario in expand(spec):
            if scenario.kind == "online":
                assert scenario.spec.kernel == "reference"
