"""Execution traces produced by the pipeline simulator."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class ExecutionInterval:
    """One contiguous slice of execution on a resource.

    ``completed`` is False for slices that ended in preemption.
    """

    job: int
    stage: int
    resource: int
    start: float
    end: float
    completed: bool

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """Chronological record of everything that executed."""

    intervals: list[ExecutionInterval] = field(default_factory=list)

    def add(self, interval: ExecutionInterval) -> None:
        self.intervals.append(interval)

    def for_job(self, job: int) -> list[ExecutionInterval]:
        return [iv for iv in self.intervals if iv.job == job]

    def for_resource(self, stage: int,
                     resource: int) -> list[ExecutionInterval]:
        return sorted(
            (iv for iv in self.intervals
             if iv.stage == stage and iv.resource == resource),
            key=lambda iv: iv.start)

    def busy_time(self, stage: int, resource: int) -> float:
        return sum(iv.duration for iv in self.for_resource(stage, resource))

    def preemption_count(self, job: int | None = None) -> int:
        """Number of preempted slices (of one job, or overall)."""
        intervals = (self.intervals if job is None
                     else self.for_job(job))
        return sum(1 for iv in intervals if not iv.completed)

    def to_records(self) -> list[dict]:
        """Intervals as plain dictionaries (JSON-friendly)."""
        return [asdict(interval) for interval in self.intervals]

    def to_json(self) -> str:
        """Serialise the trace to a JSON array."""
        return json.dumps(self.to_records())

    def to_csv(self) -> str:
        """Serialise the trace to CSV (header + one row per slice)."""
        buffer = io.StringIO()
        fields = ["job", "stage", "resource", "start", "end",
                  "completed"]
        writer = csv.DictWriter(buffer, fieldnames=fields)
        writer.writeheader()
        for record in self.to_records():
            writer.writerow(record)
        return buffer.getvalue()

    @classmethod
    def from_records(cls, records: list[dict]) -> "Trace":
        """Rebuild a trace from :meth:`to_records` output."""
        return cls(intervals=[ExecutionInterval(**record)
                              for record in records])

    def gantt(self, *, stage: int, resource: int,
              label=str, width: int = 72) -> str:
        """Plain-text Gantt strip of one resource (for debugging and the
        examples)."""
        intervals = self.for_resource(stage, resource)
        if not intervals:
            return "(idle)"
        horizon = max(iv.end for iv in intervals)
        if horizon <= 0:
            return "(idle)"
        scale = width / horizon
        lines = []
        for iv in intervals:
            offset = int(iv.start * scale)
            length = max(1, int(iv.duration * scale))
            marker = "#" if iv.completed else "~"
            lines.append(
                f"{' ' * offset}{marker * length}  "
                f"{label(iv.job)} [{iv.start:.1f}, {iv.end:.1f})"
                f"{'' if iv.completed else ' (preempted)'}")
        return "\n".join(lines)
