"""Multi-stage multi-resource (MSMR) system and job-set model.

An MSMR system (Section II of the paper) is a pipeline of ``N`` stages;
stage ``S_j`` offers ``c_j`` heterogeneous resources of one type.  Every
job visits the stages in order and uses exactly one resource per stage.

:class:`JobSet` binds a list of :class:`~repro.core.job.Job` objects to a
:class:`MSMRSystem` and precomputes, as numpy arrays, everything the
delay analysis needs repeatedly:

* ``P``        -- ``(n, N)`` processing times,
* ``A``/``D``  -- arrival times and deadlines,
* ``R``        -- ``(n, N)`` job-to-resource mapping,
* ``shares``   -- ``(n, n, N)`` boolean tensor, ``shares[i, k, j]`` true
  iff ``J_i`` and ``J_k`` are mapped to the same resource at ``S_j``,
* conflict sets ``M_{i,j}`` and ``M_i`` from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.exceptions import ModelError
from repro.core.intervals import overlap_matrix
from repro.core.job import Job


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: a pool of same-type resources.

    Parameters
    ----------
    num_resources:
        Number of resources available at this stage (``>= 1``).
    preemptive:
        Whether jobs may be preempted while executing on a resource of
        this stage.  The analysis equations are selected independently,
        but the simulator and the edge model honour this flag.
    name:
        Optional label (e.g. ``"uplink"``, ``"server"``).
    """

    num_resources: int
    preemptive: bool = True
    name: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.num_resources < 1:
            raise ModelError(
                f"stage needs at least one resource, got {self.num_resources}")


class MSMRSystem:
    """A pipeline of :class:`Stage` objects."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        stages = tuple(stages)
        if not stages:
            raise ModelError("a system needs at least one stage")
        self._stages = stages

    @classmethod
    def uniform(cls, num_stages: int, resources_per_stage: int = 1, *,
                preemptive: bool = True) -> "MSMRSystem":
        """Build a system with the same resource count at every stage.

        ``resources_per_stage=1`` yields the multi-stage *single*-resource
        pipeline of the original DCA papers (Eqs. 1-2).
        """
        stage = Stage(num_resources=resources_per_stage, preemptive=preemptive)
        return cls([stage] * num_stages)

    @property
    def stages(self) -> tuple[Stage, ...]:
        return self._stages

    @property
    def num_stages(self) -> int:
        return len(self._stages)

    @property
    def resources_per_stage(self) -> tuple[int, ...]:
        return tuple(stage.num_resources for stage in self._stages)

    @property
    def preemptive_flags(self) -> tuple[bool, ...]:
        return tuple(stage.preemptive for stage in self._stages)

    def is_single_resource(self) -> bool:
        """True if every stage has exactly one resource."""
        return all(stage.num_resources == 1 for stage in self._stages)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MSMRSystem):
            return NotImplemented
        return self._stages == other._stages

    def __hash__(self) -> int:
        return hash(self._stages)

    def __repr__(self) -> str:
        counts = "x".join(str(s.num_resources) for s in self._stages)
        return f"MSMRSystem(stages={self.num_stages}, resources={counts})"


class JobSet:
    """A set of jobs bound to an MSMR system.

    The constructor validates that every job traverses all stages of the
    system and that every resource index is within range, then caches the
    numpy views used throughout the analysis.
    """

    def __init__(self, system: MSMRSystem, jobs: Iterable[Job]) -> None:
        self._system = system
        self._jobs = tuple(jobs)
        if not self._jobs:
            raise ModelError("a job set needs at least one job")
        n_stages = system.num_stages
        for idx, job in enumerate(self._jobs):
            if job.num_stages != n_stages:
                raise ModelError(
                    f"job {job.label(idx)} has {job.num_stages} stages, "
                    f"system has {n_stages}")
            for j, resource in enumerate(job.resources):
                if resource >= system.stages[j].num_resources:
                    raise ModelError(
                        f"job {job.label(idx)} uses resource {resource} at "
                        f"stage {j}, but the stage only has "
                        f"{system.stages[j].num_resources}")
        self._build_arrays()

    def _build_arrays(self) -> None:
        jobs = self._jobs
        self.P = np.array([job.processing for job in jobs], dtype=float)
        self.A = np.array([job.arrival for job in jobs], dtype=float)
        self.D = np.array([job.deadline for job in jobs], dtype=float)
        self.R = np.array([job.resources for job in jobs], dtype=np.int64)
        # The O(n^2) pairwise tensors are materialised on first access:
        # the online engine's per-event subsets slice their segment
        # caches from the universe and often never touch them.
        self._shares: np.ndarray | None = None
        self._overlaps: np.ndarray | None = None
        self._conflicts: np.ndarray | None = None

    @property
    def shares(self) -> np.ndarray:
        """``(n, n, N)`` bool: ``shares[i, k, j]`` true iff ``J_i`` and
        ``J_k`` are mapped to the same resource at ``S_j`` (computed
        lazily, cached)."""
        if self._shares is None:
            self._shares = self.R[:, None, :] == self.R[None, :, :]
        return self._shares

    @property
    def overlaps(self) -> np.ndarray:
        """``(n, n)`` bool: interference windows ``[A, A + D]``
        intersect (closed intervals; touching windows are
        conservatively kept).  Computed lazily, cached."""
        if self._overlaps is None:
            self._overlaps = overlap_matrix(self.A, self.D)
        return self._overlaps

    @property
    def conflicts(self) -> np.ndarray:
        """``(n, n)`` bool: the pair shares at least one stage resource
        (self pairs excluded).  The conflict graph every pairwise
        solver branches over; computed lazily, cached, and shared so
        DMR, the CP search, the ILP builder and the heuristics stop
        re-reducing the ``(n, n, N)`` shares tensor each."""
        if self._conflicts is None:
            n = self.num_jobs
            self._conflicts = self.shares.any(axis=2) & \
                ~np.eye(n, dtype=bool)
        return self._conflicts

    @property
    def system(self) -> MSMRSystem:
        return self._system

    @property
    def jobs(self) -> tuple[Job, ...]:
        return self._jobs

    @property
    def num_jobs(self) -> int:
        return len(self._jobs)

    @property
    def num_stages(self) -> int:
        return self._system.num_stages

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    def label(self, index: int) -> str:
        """Human-readable label of job ``index``."""
        return self._jobs[index].label(index)

    # ------------------------------------------------------------------
    # Conflict sets (Section II: M_{i,j} and M_i)
    # ------------------------------------------------------------------

    def competitors_at_stage(self, i: int, stage: int) -> list[int]:
        """``M_{i,j}``: jobs mapped to the same resource as ``J_i`` at
        ``stage`` (excluding ``J_i`` itself)."""
        mask = self.shares[i, :, stage].copy()
        mask[i] = False
        return [int(k) for k in np.flatnonzero(mask)]

    def competitors(self, i: int) -> list[int]:
        """``M_i``: jobs sharing at least one resource with ``J_i``."""
        mask = self.shares[i].any(axis=1)
        mask[i] = False
        return [int(k) for k in np.flatnonzero(mask)]

    def conflict_pairs(self) -> list[tuple[int, int]]:
        """All unordered pairs ``(i, k)``, ``i < k``, sharing a resource."""
        any_shared = self.shares.any(axis=2)
        pairs = []
        n = self.num_jobs
        for i in range(n):
            for k in range(i + 1, n):
                if any_shared[i, k]:
                    pairs.append((i, k))
        return pairs

    def jobs_on_resource(self, stage: int, resource: int) -> list[int]:
        """Indices of jobs mapped to ``resource`` at ``stage``."""
        return [int(k) for k in np.flatnonzero(self.R[:, stage] == resource)]

    # ------------------------------------------------------------------
    # Subset views (online admission / incremental analysis)
    # ------------------------------------------------------------------

    def restrict(self, indices: "Sequence[int] | np.ndarray") -> "JobSet":
        """Job set over ``jobs[indices]``, built by *slicing*.

        The subset is bitwise identical to
        ``JobSet(self.system, [self.jobs[i] for i in indices])`` -- the
        per-pair ``shares`` tensor and the ``overlaps`` matrix are pure
        elementwise comparisons, so slicing them equals recomputing
        them -- but skips the per-job validation loop and the
        ``O(k^2 N)`` comparison kernels entirely.  This is the job-set
        half of the incremental fast path used by
        :mod:`repro.online.incremental` (the other half is
        :meth:`repro.core.segments.SegmentCache.restrict`).

        ``indices`` must be distinct, in-range job indices; their order
        becomes the subset's job order.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 1 or idx.size == 0:
            raise ModelError(
                f"restrict needs a non-empty 1-d index collection, "
                f"got shape {idx.shape}")
        if len({int(i) for i in idx}) != idx.size:
            raise ModelError("restrict indices must be distinct")
        if (idx < 0).any() or (idx >= self.num_jobs).any():
            raise ModelError(
                f"restrict indices out of range for {self.num_jobs} jobs")
        subset = object.__new__(JobSet)
        subset._system = self._system
        subset._jobs = tuple(self._jobs[int(i)] for i in idx)
        subset.P = self.P[idx]
        subset.A = self.A[idx]
        subset.D = self.D[idx]
        subset.R = self.R[idx]
        # Recomputed lazily from the sliced R/A/D on first access --
        # elementwise comparisons, hence bitwise identical to slicing
        # the parent's tensors (which may not even be materialised).
        subset._shares = None
        subset._overlaps = None
        subset._conflicts = None
        return subset

    def partition(self, assignment: "Sequence[int] | np.ndarray",
                  num_shards: "int | None" = None
                  ) -> "list[tuple[np.ndarray, JobSet | None]]":
        """Split the job set into disjoint per-shard subsets.

        ``assignment[i]`` names the shard of job ``i`` (ids ``0 ..
        num_shards - 1``).  Returns one ``(indices, subset)`` pair per
        shard, in shard order: ``indices`` are the ascending job
        indices assigned to the shard and ``subset`` is
        ``self.restrict(indices)`` -- built by slicing, so the pairs
        stand up in O(shard size) gathers -- or ``None`` for a shard
        that owns no job.  Every job lands in exactly one subset, so
        the subsets are disjoint and jointly cover the set.

        This is the job-set half of the shard layer
        (:mod:`repro.online.sharded`); the segment-algebra half is
        :meth:`repro.core.segments.SegmentCache.partition`.
        """
        shard_of = np.asarray(assignment, dtype=np.int64)
        if shard_of.shape != (self.num_jobs,):
            raise ModelError(
                f"partition needs one shard id per job "
                f"({self.num_jobs}), got shape {shard_of.shape}")
        if (shard_of < 0).any():
            raise ModelError("shard ids must be non-negative")
        highest = int(shard_of.max())
        if num_shards is None:
            num_shards = highest + 1
        elif highest >= num_shards:
            raise ModelError(
                f"assignment names shard {highest}, but only "
                f"{num_shards} shards exist")
        parts: "list[tuple[np.ndarray, JobSet | None]]" = []
        for shard in range(num_shards):
            indices = np.flatnonzero(shard_of == shard)
            parts.append((indices,
                          self.restrict(indices) if indices.size
                          else None))
        return parts

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def single_resource(cls, processing: Sequence[Sequence[float]],
                        deadlines: Sequence[float],
                        arrivals: Sequence[float] | None = None, *,
                        preemptive: bool = True) -> "JobSet":
        """Build a multi-stage *single*-resource job set from raw arrays.

        This is the setting of Eqs. 1-2 (and of the paper's Example 1):
        every job competes with every other job at every stage.
        """
        if not processing:
            raise ModelError("need at least one job")
        num_stages = len(processing[0])
        system = MSMRSystem.uniform(num_stages, 1, preemptive=preemptive)
        if arrivals is None:
            arrivals = [0.0] * len(processing)
        jobs = [
            Job(processing=tuple(p), deadline=d, arrival=a,
                resources=(0,) * num_stages)
            for p, d, a in zip(processing, deadlines, arrivals, strict=True)
        ]
        return cls(system, jobs)

    def __repr__(self) -> str:
        return (f"JobSet(n={self.num_jobs}, stages={self.num_stages}, "
                f"system={self._system!r})")
