"""Property-based tests for periodic-task unrolling.

Invariants on random task sets:

* the hyperperiod is a common multiple of every period (within float
  tolerance) and no larger than the product of the periods;
* unrolling releases exactly ``ceil(window - offset) / period``
  instances per task, all inside the window, in arrival order per
  task;
* every instance inherits its task's processing, deadline, mapping;
* instances of one task never have overlapping interference windows
  (the constrained-deadline guarantee the task-level OPA relies on);
* task-level priorities from ``opdca_periodic`` expand to a valid
  job-level permutation grouped by task.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import MSMRSystem
from repro.workload.periodic import (
    PeriodicTask,
    hyperperiod,
    opdca_periodic,
    unroll,
)

period_values = st.sampled_from([2.0, 2.5, 4.0, 5.0, 8.0, 10.0, 20.0])

task_sets = st.lists(
    st.fixed_dictionaries({
        "period": period_values,
        "scale": st.floats(0.05, 0.6),
        "offset": st.floats(0.0, 3.0),
    }),
    min_size=1, max_size=4,
)


def build(params, num_stages=2):
    system = MSMRSystem.uniform(num_stages, 1)
    tasks = []
    for spec in params:
        deadline = spec["period"]
        work = spec["scale"] * deadline / num_stages
        tasks.append(PeriodicTask(
            period=spec["period"],
            processing=(max(work, 1e-3),) * num_stages,
            deadline=deadline,
            resources=(0,) * num_stages,
            offset=spec["offset"],
        ))
    return system, tasks


@settings(max_examples=60, deadline=None)
@given(params=task_sets)
def test_hyperperiod_is_common_multiple(params):
    periods = [spec["period"] for spec in params]
    h = hyperperiod(periods)
    for period in periods:
        ratio = h / period
        assert abs(ratio - round(ratio)) < 1e-9
    assert h >= max(periods) - 1e-9
    if all(float(p).is_integer() for p in periods):
        assert h <= math.prod(periods) + 1e-9


@settings(max_examples=60, deadline=None)
@given(params=task_sets)
def test_unroll_counts_and_window(params):
    system, tasks = build(params)
    unrolled = unroll(system, tasks)
    for index, task in enumerate(tasks):
        instances = unrolled.instances(index)
        expected = math.ceil(
            (unrolled.window - task.offset) / task.period - 1e-12)
        assert len(instances) == expected
        arrivals = unrolled.jobset.A[instances]
        np.testing.assert_allclose(
            arrivals,
            task.offset + np.arange(expected) * task.period)
        assert (arrivals < unrolled.window).all()


@settings(max_examples=60, deadline=None)
@given(params=task_sets)
def test_instances_inherit_task_parameters(params):
    system, tasks = build(params)
    unrolled = unroll(system, tasks)
    for i in range(unrolled.jobset.num_jobs):
        task = tasks[int(unrolled.task_of[i])]
        job = unrolled.jobset.jobs[i]
        assert job.processing == task.processing
        assert job.deadline == task.deadline
        assert job.resources == task.resources


@settings(max_examples=60, deadline=None)
@given(params=task_sets)
def test_sibling_windows_disjoint(params):
    """Constrained deadlines => instance windows of one task do not
    overlap (touching endpoints allowed)."""
    system, tasks = build(params)
    unrolled = unroll(system, tasks)
    A, D = unrolled.jobset.A, unrolled.jobset.D
    for index in range(len(tasks)):
        instances = unrolled.instances(index)
        for a, b in zip(instances, instances[1:]):
            assert A[a] + D[a] <= A[b] + 1e-9


@settings(max_examples=25, deadline=None)
@given(params=task_sets)
def test_task_level_priorities_expand_to_permutation(params):
    system, tasks = build(params)
    result = opdca_periodic(system, tasks)
    if not result.feasible:
        return
    priorities = result.job_priorities()
    n = result.unrolled.jobset.num_jobs
    assert sorted(priorities.tolist()) == list(range(1, n + 1))
    # Grouped by task: the priority span of any task never interleaves
    # with another task's.
    for t in range(len(tasks)):
        own = priorities[result.unrolled.task_of == t]
        others = priorities[result.unrolled.task_of != t]
        if len(own) and len(others):
            assert not ((others > own.min()) & (others < own.max())).any()
