"""ASCII bar charts: plain, stacked, and grouped.

The stacked variant mirrors the paper's Figure 4(a-c) histograms: the
base segment is the acceptance ratio of DM, and each further segment is
the *increment* another approach adds on top of the previous one.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Fill characters used for successive stacked/grouped series.
SERIES_GLYPHS = "#=+*o%@&"

_DEF_WIDTH = 50


def _scale(value: float, maximum: float, width: int) -> int:
    """Number of character cells representing ``value``.

    Positive values always occupy at least one cell so that tiny but
    non-zero segments stay visible.
    """
    if maximum <= 0:
        return 0
    cells = round(width * value / maximum)
    if value > 0 and cells == 0:
        return 1
    return int(cells)


def _check_width(width: int) -> None:
    if width < 10:
        raise ValueError(f"width must be >= 10 characters, got {width}")


def bar_chart(values: Mapping[str, float], *, width: int = _DEF_WIDTH,
              maximum: float | None = None, unit: str = "") -> str:
    """One horizontal bar per (label, value) entry.

    Parameters
    ----------
    values:
        Ordered mapping of label to non-negative value.
    width:
        Width of the longest bar in characters.
    maximum:
        Value that maps to the full ``width``; defaults to the largest
        entry.  Use a fixed maximum (e.g. ``100`` for percentages) to
        compare charts across calls.
    unit:
        Suffix appended to the printed value (e.g. ``"%"``).
    """
    _check_width(width)
    if not values:
        return "(no data)"
    for label, value in values.items():
        if value < 0:
            raise ValueError(f"bar chart values must be >= 0; "
                             f"{label!r} is {value}")
    top = maximum if maximum is not None else max(values.values())
    label_width = max(len(str(label)) for label in values)
    lines = []
    for label, value in values.items():
        bar = "#" * _scale(value, top, width)
        lines.append(f"{str(label):<{label_width}} |{bar:<{width}}| "
                     f"{value:.1f}{unit}")
    return "\n".join(lines)


def stacked_bars(rows: Sequence[tuple[str, Mapping[str, float]]], *,
                 width: int = _DEF_WIDTH, maximum: float = 100.0,
                 unit: str = "%") -> str:
    """The paper's stacked-histogram view (Fig. 4a-c).

    ``rows`` is a sequence of ``(x_label, segments)`` where ``segments``
    maps series name to the *increment* that series stacks on top of
    the previous one.  All rows must use the same series names in the
    same order; the legend is emitted once at the top.

    Example::

        stacked_bars([
            ("0.05", {"DM": 97.0, "+DMR": 1.0, "+OPDCA": 1.0, "+OPT": 0.5}),
            ("0.10", {"DM": 85.0, "+DMR": 5.0, "+OPDCA": 4.0, "+OPT": 2.0}),
        ])
    """
    _check_width(width)
    if not rows:
        return "(no data)"
    series = list(rows[0][1].keys())
    for x_label, segments in rows:
        if list(segments.keys()) != series:
            raise ValueError(
                f"row {x_label!r} has series {list(segments.keys())}, "
                f"expected {series}")
        for name, value in segments.items():
            if value < -1e-9:
                raise ValueError(f"stacked increment {name!r} at "
                                 f"{x_label!r} is negative ({value})")
    if len(series) > len(SERIES_GLYPHS):
        raise ValueError(f"at most {len(SERIES_GLYPHS)} series supported, "
                         f"got {len(series)}")
    glyph_of = dict(zip(series, SERIES_GLYPHS))
    legend = "  ".join(f"{glyph_of[name]} {name}" for name in series)
    label_width = max(len(str(x)) for x, _ in rows)
    lines = [legend]
    for x_label, segments in rows:
        bar = ""
        total = 0.0
        for name in series:
            value = max(0.0, segments[name])
            total += value
            # Scale cumulatively so rounding never exceeds the width.
            target = _scale(total, maximum, width)
            bar += glyph_of[name] * max(0, target - len(bar))
        lines.append(f"{str(x_label):<{label_width}} |{bar:<{width}}| "
                     f"{total:.1f}{unit}")
    return "\n".join(lines)


def grouped_bars(groups: Sequence[tuple[str, Mapping[str, float]]], *,
                 width: int = _DEF_WIDTH, maximum: float | None = None,
                 unit: str = "") -> str:
    """Grouped horizontal bars (the paper's Fig. 4d layout).

    ``groups`` is a sequence of ``(group_label, values)``; each value
    becomes its own bar, and groups are separated by a blank line.
    """
    _check_width(width)
    if not groups:
        return "(no data)"
    all_values = [value for _, values in groups
                  for value in values.values()]
    if not all_values:
        return "(no data)"
    if min(all_values) < 0:
        raise ValueError("grouped bar values must be >= 0")
    top = maximum if maximum is not None else max(all_values)
    label_width = max(len(str(name)) for _, values in groups
                      for name in values)
    blocks = []
    for group_label, values in groups:
        lines = [f"{group_label}:"]
        for name, value in values.items():
            bar = "#" * _scale(value, top, width)
            lines.append(f"  {str(name):<{label_width}} |{bar:<{width}}| "
                         f"{value:.2f}{unit}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
