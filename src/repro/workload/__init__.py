"""Workload generation: the paper's edge-computing scenario, generic
random MSMR instances for testing, and periodic-task unrolling."""

from repro.workload.edge import (
    MAPPING_POLICIES,
    EdgeTestCase,
    EdgeWorkloadConfig,
    edge_system,
    generate_edge_case,
)
from repro.workload.heaviness import (
    heaviness_matrix,
    heavy_mask,
    job_heaviness,
    rejected_heaviness,
    resource_heaviness,
    system_heaviness,
)
from repro.workload.pipeline import (
    PipelineTestCase,
    PipelineWorkloadConfig,
    generate_pipeline_case,
    pipeline_system,
)
from repro.workload.periodic import (
    PeriodicOPAResult,
    PeriodicTask,
    UnrolledTaskSet,
    hyperperiod,
    opdca_periodic,
    unroll,
)
from repro.workload.random_jobs import (
    RandomInstanceConfig,
    random_jobset,
    random_single_resource_jobset,
)

__all__ = [
    "MAPPING_POLICIES",
    "EdgeTestCase",
    "EdgeWorkloadConfig",
    "PeriodicOPAResult",
    "PeriodicTask",
    "PipelineTestCase",
    "PipelineWorkloadConfig",
    "RandomInstanceConfig",
    "UnrolledTaskSet",
    "edge_system",
    "generate_edge_case",
    "generate_pipeline_case",
    "heaviness_matrix",
    "heavy_mask",
    "hyperperiod",
    "job_heaviness",
    "opdca_periodic",
    "pipeline_system",
    "random_jobset",
    "random_single_resource_jobset",
    "rejected_heaviness",
    "resource_heaviness",
    "system_heaviness",
    "unroll",
]
