#!/usr/bin/env python3
"""Benchmark-regression gate: compare a fresh pytest-benchmark JSON
report against a committed baseline.

Usage::

    python scripts/compare_bench.py BASELINE FRESH \
        [--tolerance 0.20] [--floor METRIC=X] [--ceiling METRIC=X]

Both files are ``--benchmark-json`` reports; benchmarks are matched by
name and compared on the deterministic *derived* metrics the suites
publish through ``extra_info`` (never on raw wall-clock seconds, which
vary too much across runner hardware):

* ``speedup(...)`` ratios -- batched-vs-serial bound evaluation,
  incremental-vs-cold admission -- must stay within ``--tolerance``
  (default -20%) of the baseline value; repeatable ``--floor
  METRIC=X`` flags additionally enforce the historic absolute gates
  (e.g. ``--floor 'speedup(admission)=2.0'``).
* ``events_per_sec(...)`` throughputs must stay within ``--tolerance``
  of the baseline.  They are hardware-proportional, so the committed
  baselines must be refreshed from a CI artifact, not a laptop (see
  ``benchmarks/baselines/README.md``).
* ``acceptance_ratio(...)`` quality metrics -- the sharded engine's
  acceptance vs the monolithic oracle -- must not drop below
  ``--tolerance`` of the baseline (deterministic, so any drift is a
  real behaviour change, not noise).
* repeatable ``--ceiling METRIC=X`` flags enforce absolute *upper*
  bounds over the fresh report (e.g. ``--ceiling
  'overhead_pct(online)=5.0'`` caps the measured overhead of the
  ``repro.obs`` telemetry spine); like ``--floor`` they apply to any
  ``extra_info`` metric, gated prefix or not.

Gated metrics that appear only in the fresh report (a brand-new
benchmark or a newly published metric) never fail the run; they are
surfaced as ``add it to the committed baseline to arm the gate`` notes
so they get committed on the next baseline refresh instead of riding
along ungated.

Improvements beyond ``+tolerance`` pass but print a reminder to ratchet
the baseline, so the committed trajectory keeps up with the code.

Exit status: 0 when every gated metric passes, 1 on any regression,
2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys

#: ``extra_info`` key prefixes that participate in the gate.  Every
#: other numeric key is reported as context but never fails the run.
RATIO_PREFIX = "speedup("
THROUGHPUT_PREFIX = "events_per_sec("
QUALITY_PREFIX = "acceptance_ratio("


def load_metrics(path: str) -> "dict[str, dict[str, float]]":
    """``{benchmark name: {metric: value}}`` for the numeric
    ``extra_info`` entries of one report."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: cannot read {path}: {error}")
    benchmarks = report.get("benchmarks") or []
    if not benchmarks:
        raise SystemExit(f"error: no benchmarks in {path}")
    metrics: dict[str, dict[str, float]] = {}
    for bench in benchmarks:
        info = {key: float(value)
                for key, value in (bench.get("extra_info") or {}).items()
                if isinstance(value, (int, float))}
        metrics[bench.get("name", "?")] = info
    return metrics


def gated(metric: str) -> bool:
    return metric.startswith(
        (RATIO_PREFIX, THROUGHPUT_PREFIX, QUALITY_PREFIX))


def parse_bound(text: str, flag: str) -> "tuple[str, float]":
    """Split a ``--floor``/``--ceiling`` ``METRIC=X`` argument on its
    *last* ``=`` (the metric names themselves contain ``=``, e.g.
    ``speedup(bounds)@n=100``)."""
    metric, _, value = text.rpartition("=")
    if not metric:
        raise SystemExit(
            f"error: {flag} needs METRIC=VALUE, got {text!r}")
    try:
        return metric, float(value)
    except ValueError:
        raise SystemExit(
            f"error: {flag} value must be a number, got {text!r}")


def parse_floor(text: str) -> "tuple[str, float]":
    return parse_bound(text, "--floor")


def compare(baseline: "dict[str, dict[str, float]]",
            fresh: "dict[str, dict[str, float]]", *,
            tolerance: float, floors: "dict[str, float]",
            ceilings: "dict[str, float] | None" = None
            ) -> "tuple[list[str], list[str]]":
    """Returns ``(failures, notes)`` over every matched metric."""
    failures: list[str] = []
    notes: list[str] = []
    ceilings = ceilings or {}
    matched = 0
    for name, base_info in sorted(baseline.items()):
        fresh_info = fresh.get(name)
        if fresh_info is None:
            failures.append(
                f"{name}: benchmark missing from the fresh report")
            continue
        for metric, base_value in sorted(base_info.items()):
            if not gated(metric):
                continue
            if metric not in fresh_info:
                failures.append(
                    f"{name}/{metric}: metric missing from the fresh "
                    f"report (baseline {base_value:g})")
                continue
            value = fresh_info[metric]
            floor = base_value * (1.0 - tolerance)
            matched += 1
            verdict = "ok"
            if value < floor:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}/{metric}: {value:g} < {floor:g} "
                    f"(baseline {base_value:g} -{tolerance:.0%})")
            elif value > base_value * (1.0 + tolerance):
                verdict = "improved"
                notes.append(
                    f"{name}/{metric}: {value:g} beats the baseline "
                    f"{base_value:g} by more than {tolerance:.0%} -- "
                    f"consider ratcheting the committed baseline")
            print(f"  {name}/{metric}: baseline={base_value:g} "
                  f"fresh={value:g} [{verdict}]")
    if matched == 0 and not floors and not ceilings:
        # A report whose only gates are absolute bounds (e.g. the
        # observability-overhead ceiling) legitimately matches no
        # relative metric; with neither floors nor ceilings, though,
        # zero matches means the gate is not protecting anything.
        failures.append(
            "no gated metrics (speedup(*)/events_per_sec(*)/"
            "acceptance_ratio(*)) matched between baseline and fresh "
            "report")
    # Gated metrics that only exist in the fresh report are not
    # protected by anything yet: surface them so they get committed to
    # the baseline instead of silently riding along ungated.
    for name, info in sorted(fresh.items()):
        base_info = baseline.get(name, {})
        for metric in sorted(info):
            if gated(metric) and metric not in base_info:
                notes.append(
                    f"{name}/{metric}: gated metric present only in "
                    f"the fresh report ({info[metric]:g}) -- add it to "
                    f"the committed baseline to arm the gate")
    # Absolute floors are enforced over the *fresh* report alone, so a
    # baseline refresh that drops or renames a metric can never
    # silently disarm a historic gate.
    for metric, floor in sorted(floors.items()):
        found = False
        for name, info in sorted(fresh.items()):
            if metric not in info:
                continue
            found = True
            if info[metric] < floor:
                failures.append(
                    f"{name}/{metric}: {info[metric]:g} is below the "
                    f"absolute floor {floor:g}")
        if not found:
            failures.append(
                f"--floor names metric {metric!r} absent from the "
                f"fresh report")
    # Ceilings mirror floors: absolute upper bounds over the fresh
    # report (e.g. 'overhead_pct(online)=5.0' caps the measured
    # disabled-instrumentation overhead of the telemetry spine).
    for metric, ceiling in sorted(ceilings.items()):
        found = False
        for name, info in sorted(fresh.items()):
            if metric not in info:
                continue
            found = True
            value = info[metric]
            verdict = "ok" if value <= ceiling else "REGRESSION"
            print(f"  {name}/{metric}: fresh={value:g} "
                  f"ceiling={ceiling:g} [{verdict}]")
            if value > ceiling:
                failures.append(
                    f"{name}/{metric}: {value:g} is above the "
                    f"absolute ceiling {ceiling:g}")
        if not found:
            failures.append(
                f"--ceiling names metric {metric!r} absent from the "
                f"fresh report")
    return failures, notes


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a fresh benchmark report regresses "
                    "against a committed baseline.")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly produced JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        metavar="FRACTION",
                        help="allowed relative drop per metric "
                             "(default: 0.20 = -20%%)")
    parser.add_argument("--floor", action="append", default=[],
                        metavar="METRIC=X",
                        help="absolute floor for one metric, e.g. "
                             "'speedup(admission)=2.0' (repeatable; "
                             "carries the historic fixed CI gates)")
    parser.add_argument("--ceiling", action="append", default=[],
                        metavar="METRIC=X",
                        help="absolute ceiling for one metric over "
                             "the fresh report, e.g. "
                             "'overhead_pct(online)=5.0' (repeatable)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must lie in [0, 1), got "
                     f"{args.tolerance}")
    floors = dict(parse_floor(text) for text in args.floor)
    ceilings = dict(parse_bound(text, "--ceiling")
                    for text in args.ceiling)

    print(f"comparing {args.fresh} against baseline {args.baseline} "
          f"(tolerance -{args.tolerance:.0%}"
          + (f", floors {floors}" if floors else "")
          + (f", ceilings {ceilings}" if ceilings else "") + ")")
    failures, notes = compare(
        load_metrics(args.baseline), load_metrics(args.fresh),
        tolerance=args.tolerance, floors=floors, ceilings=ceilings)
    for note in notes:
        print(f"note: {note}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
