"""Capacity planning: how much headroom does a schedule have?

A deployment question the analysis answers directly: given today's
workload and the priority assignment OPDCA computed, by what factor can
processing times grow (new firmware, heavier frames, slower radios)
before deadlines are at risk?  Because all DCA bounds are homogeneous
in the processing times, the answer has a closed form — the critical
scaling factor.

The example also exercises the exhaustive oracles on a small instance
(the release sanity check that OPDCA and OPT agree with brute force)
and saves/loads the instance as JSON.

Run:  python examples/capacity_planning.py
"""

import json
import tempfile

from repro import (
    Job,
    JobSet,
    MSMRSystem,
    Stage,
    best_ordering,
    critical_scaling,
    exists_pairwise,
    opdca,
    scaling_profile,
)
from repro.core import serialize
from repro.viz import bar_chart


def build_jobset() -> JobSet:
    """Small surveillance deployment: 2-resource, 3-stage pipeline."""
    system = MSMRSystem([
        Stage(num_resources=2, name="capture"),
        Stage(num_resources=2, name="analyze"),
        Stage(num_resources=2, name="archive"),
    ])
    jobs = [
        Job(processing=(4, 11, 3), deadline=70, resources=(0, 0, 0),
            name="entrance-cam"),
        Job(processing=(5, 9, 2), deadline=60, resources=(0, 1, 0),
            name="lobby-cam"),
        Job(processing=(3, 14, 4), deadline=75, resources=(1, 0, 1),
            name="garage-cam"),
        Job(processing=(6, 8, 2), deadline=55, resources=(1, 1, 1),
            name="yard-cam"),
    ]
    return JobSet(system, jobs)


def main() -> None:
    jobset = build_jobset()
    label = jobset.label

    result = opdca(jobset)
    print(f"OPDCA feasible: {result.feasible}")
    order = " > ".join(label(i) for i in result.ordering.order())
    print(f"priority order: {order}")

    print("\n=== Headroom analysis (critical scaling) ===")
    print(scaling_profile(jobset, result.ordering.priority,
                          label=label))
    scaling = critical_scaling(jobset, result.ordering.priority)
    growth = 100.0 * (scaling.factor - 1.0)
    print(f"\n-> all processing times may grow {growth:.0f}% before "
          f"{label(scaling.bottleneck)} risks its deadline")

    print("\n=== Per-job load vs deadline ===")
    print(bar_chart(
        {label(i): 100.0 * scaling.delays[i] / jobset.D[i]
         for i in range(jobset.num_jobs)},
        maximum=100.0, unit="% of deadline"))

    print("\n=== Oracle cross-check (exhaustive, small n only) ===")
    oracle = best_ordering(jobset)
    print(f"brute-force ordering search: feasible={oracle.feasible} "
          f"({oracle.tried} orderings tried)")
    pairwise = exists_pairwise(jobset)
    print(f"brute-force pairwise search: feasible={pairwise.feasible} "
          f"({pairwise.tried} orientations tried)")
    assert oracle.feasible == result.feasible

    print("\n=== Save / load the instance ===")
    with tempfile.NamedTemporaryFile("w+", suffix=".json") as handle:
        serialize.save(jobset, handle.name)
        handle.seek(0)
        payload = json.load(handle)
        print(f"saved {len(payload['jobs'])} jobs, "
              f"{len(payload['stages'])} stages to {handle.name}")
        clone = serialize.load(handle.name)
    print(f"reloaded instance matches: "
          f"{(clone.P == jobset.P).all() and clone.system == jobset.system}")


if __name__ == "__main__":
    main()
