"""Tests for the DCMP decomposition baseline."""

import numpy as np
import pytest

from repro.baselines.dcmp import (
    dcmp,
    stage_ranks,
    virtual_deadlines,
)
from repro.core.job import Job
from repro.core.system import JobSet, MSMRSystem, Stage


@pytest.fixture
def jobset():
    system = MSMRSystem([Stage(1, preemptive=False),
                         Stage(1, preemptive=True)])
    jobs = [
        Job(processing=(2, 8), deadline=30, resources=(0, 0)),
        Job(processing=(4, 4), deadline=24, resources=(0, 0)),
    ]
    return JobSet(system, jobs)


class TestVirtualDeadlines:
    def test_split_proportional_to_upsilon(self, jobset):
        virtual = virtual_deadlines(jobset)
        # Heaviness: J0 = (2/30, 8/30), J1 = (4/24, 4/24).
        # Upsilon stage 0 (shared resource): 2/30 + 4/24 = 0.2333...
        # Upsilon stage 1: 8/30 + 4/24 = 0.4333...
        # J0: D * [0.35, 0.65].
        assert virtual.shape == (2, 2)
        assert virtual[0].sum() == pytest.approx(30.0)
        assert virtual[1].sum() == pytest.approx(24.0)
        assert virtual[0, 1] > virtual[0, 0]

    def test_sums_to_deadline(self, small_edge_jobset):
        virtual = virtual_deadlines(small_edge_jobset)
        assert np.allclose(virtual.sum(axis=1), small_edge_jobset.D)
        assert (virtual > 0).all()


class TestStageRanks:
    def test_rank_by_virtual_deadline(self):
        virtual = np.array([[5.0, 10.0], [7.0, 3.0]])
        rank = stage_ranks(virtual)
        assert rank[:, 0].tolist() == [1, 2]
        assert rank[:, 1].tolist() == [2, 1]

    def test_tie_breaks_by_index(self):
        virtual = np.array([[5.0], [5.0]])
        rank = stage_ranks(virtual)
        assert rank[:, 0].tolist() == [1, 2]


class TestDCMP:
    def test_feasible_loose_instance(self, jobset):
        result = dcmp(jobset)
        assert result.feasible
        assert not result.stage_misses.any()
        result.simulation.validate()

    def test_infeasible_when_budgets_shrink(self):
        system = MSMRSystem([Stage(1), Stage(1)])
        jobs = [
            Job(processing=(5, 5), deadline=11, resources=(0, 0)),
            Job(processing=(5, 5), deadline=11, resources=(0, 0)),
        ]
        result = dcmp(JobSet(system, jobs))
        # Two jobs of 10 units within deadline 11: the second job
        # cannot meet its budgets.
        assert not result.feasible

    def test_budget_release_stricter_than_immediate(self,
                                                    small_edge_jobset):
        immediate = dcmp(small_edge_jobset, release="immediate")
        budget = dcmp(small_edge_jobset, release="budget")
        # Budget release delays work; acceptance can only get harder.
        if budget.feasible:
            assert immediate.feasible

    def test_budget_release_monotonicity_over_seeds(self,
                                                    small_edge_config):
        from repro.workload.edge import generate_edge_case
        for seed in range(6):
            jobset = generate_edge_case(small_edge_config,
                                        seed=seed).jobset
            if dcmp(jobset, release="budget").feasible:
                assert dcmp(jobset, release="immediate").feasible

    def test_invalid_release_mode(self, jobset):
        with pytest.raises(ValueError, match="release"):
            dcmp(jobset, release="lazy")

    def test_stage_misses_shape(self, small_edge_jobset):
        result = dcmp(small_edge_jobset, release="budget")
        assert result.stage_misses.shape == (
            small_edge_jobset.num_jobs, 3)

    def test_end_to_end_property(self, jobset):
        result = dcmp(jobset)
        assert result.end_to_end_feasible == result.simulation.all_met
        assert result.delays.shape == (2,)
