"""Holistic per-stage additive response-time analysis (HOL baseline).

The classical alternative to delay composition ([4], [5] in the paper's
references): bound each stage's response time independently and add the
per-stage bounds up.  For one-shot jobs the stage response of ``J_i``
at ``S_j`` under fixed priorities is at most

    ``R_{i,j} = P_{i,j} + sum_{J_k in H_i ∩ M_{i,j}} P_{k,j}``
    ``        (+ max_{J_k in B ∩ M_{i,j}} P_{k,j}``  on non-preemptive
    stages, where ``B`` is the blocking set)

and the end-to-end bound is ``sum_j R_{i,j}``.  Every higher-priority
job is charged once *per shared stage* -- this is exactly the pessimism
DCA removes (one ``t_{k,1}`` per job plus one max per stage), so the
pair {HOL, DCA} quantifies the paper's core motivation.  Ablation A6
(``bench_ablation_holistic.py``) measures the gap.

The test depends only on the *sets* ``H_i``/``B`` -- never on relative
priorities -- and adding a job to ``H_i`` can only increase the bound,
so with ``blocking="all"`` (priority-independent, mirroring Eq. 5) it
is OPA-compatible and :func:`holistic_opa` runs Audsley's algorithm
on it.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.opa import OPAResult, audsley
from repro.core.schedulability import DEADLINE_TOLERANCE
from repro.core.segments import SegmentCache
from repro.core.system import JobSet

MaskLike = "np.ndarray | Iterable[int]"


class HolisticAnalyzer:
    """Per-stage additive end-to-end delay bounds.

    Parameters
    ----------
    jobset:
        Job set under analysis.
    preemptive:
        Per-stage preemption flags; defaults to the system's.  On a
        non-preemptive stage one blocking job is charged.
    blocking:
        ``"lower"`` charges the actual lower-priority set (tighter but
        OPA-incompatible, like Eq. 4); ``"all"`` charges the worst over
        all other jobs (OPA-compatible, like Eq. 5).
    window_filter:
        Drop jobs whose interference windows cannot overlap, as in
        :class:`~repro.core.dca.DelayAnalyzer`.
    """

    def __init__(self, jobset: JobSet, *,
                 preemptive: "list[bool] | None" = None,
                 blocking: str = "all",
                 window_filter: bool = True) -> None:
        if blocking not in ("lower", "all"):
            raise ValueError(
                f"blocking must be 'lower' or 'all', got {blocking!r}")
        self._jobset = jobset
        self._cache = SegmentCache(jobset)
        self._blocking = blocking
        self._window_filter = window_filter
        self._n = jobset.num_jobs
        flags = (jobset.system.preemptive_flags if preemptive is None
                 else tuple(preemptive))
        if len(flags) != jobset.num_stages:
            raise ValueError(
                f"need {jobset.num_stages} preemption flags, "
                f"got {len(flags)}")
        self._nonpreemptive = ~np.array(flags, dtype=bool)

    @property
    def jobset(self) -> JobSet:
        return self._jobset

    @property
    def blocking(self) -> str:
        return self._blocking

    @property
    def opa_compatible(self) -> bool:
        """OPA-compatible unless blocking charges the true lower set on
        some non-preemptive stage."""
        return self._blocking == "all" or not bool(
            self._nonpreemptive.any())

    def _interferers(self, i: int, jobs: MaskLike,
                     active: np.ndarray | None) -> np.ndarray:
        if jobs is None:
            mask = np.zeros(self._n, dtype=bool)
        else:
            array = np.asarray(jobs)
            if array.dtype == bool:
                mask = array.copy()
            else:
                mask = np.zeros(self._n, dtype=bool)
                mask[array.astype(np.int64)] = True
        mask[i] = False
        if self._window_filter:
            mask &= self._jobset.overlaps[i]
        if active is not None:
            mask &= active
        return mask

    def stage_responses(self, i: int, higher: MaskLike,
                        lower: MaskLike | None = None, *,
                        active: np.ndarray | None = None) -> np.ndarray:
        """Per-stage response-time bounds ``R_{i,j}`` of job ``i``."""
        h_mask = self._interferers(i, higher, active)
        ep = self._cache.ep[i]                       # (n, N) shared times
        responses = self._jobset.P[i].copy()
        responses += ep[h_mask].sum(axis=0)
        if self._nonpreemptive.any():
            if self._blocking == "all":
                b_mask = self._interferers(
                    i, np.ones(self._n, dtype=bool), active)
            else:
                b_mask = self._interferers(i, lower, active)
            blocked = np.where(b_mask[:, None], ep, 0.0).max(axis=0) \
                if b_mask.any() else np.zeros(self._jobset.num_stages)
            responses += np.where(self._nonpreemptive, blocked, 0.0)
        return responses

    def delay_bound(self, i: int, higher: MaskLike,
                    lower: MaskLike | None = None, *,
                    active: np.ndarray | None = None) -> float:
        """End-to-end holistic bound ``sum_j R_{i,j}``."""
        return float(self.stage_responses(i, higher, lower,
                                          active=active).sum())

    def delays_for_ordering(self, priority: np.ndarray, *,
                            active: np.ndarray | None = None
                            ) -> np.ndarray:
        """Holistic bounds of all jobs under a total priority ordering."""
        priority = np.asarray(priority)
        x = priority[:, None] < priority[None, :]
        return self.delays_for_pairwise(x, active=active)

    def delays_for_pairwise(self, x: np.ndarray, *,
                            active: np.ndarray | None = None
                            ) -> np.ndarray:
        """Holistic bounds under a pairwise relation (``x[i, k]`` true
        iff ``J_i`` has higher priority than ``J_k``)."""
        x = np.asarray(x, dtype=bool)
        n = self._n
        if x.shape != (n, n):
            raise ValueError(f"x has shape {x.shape}, expected {(n, n)}")
        higher_of = x.T & ~np.eye(n, dtype=bool)
        lower_of = x & ~np.eye(n, dtype=bool)
        delays = np.full(n, np.nan)
        indices = range(n) if active is None else np.flatnonzero(active)
        for i in indices:
            i = int(i)
            delays[i] = self.delay_bound(i, higher_of[i], lower_of[i],
                                         active=active)
        return delays


class SHolistic:
    """Schedulability test wrapping :class:`HolisticAnalyzer`.

    Drop-in analogue of :class:`~repro.core.schedulability.SDCA` with
    the holistic bound; used by :func:`holistic_opa` and the ablation.
    """

    def __init__(self, jobset: JobSet, *,
                 analyzer: HolisticAnalyzer | None = None,
                 preemptive: "list[bool] | None" = None,
                 blocking: str = "all") -> None:
        self._analyzer = analyzer if analyzer is not None else \
            HolisticAnalyzer(jobset, preemptive=preemptive,
                             blocking=blocking)
        if self._analyzer.jobset is not jobset:
            raise ValueError("analyzer was built for a different job set")
        self._jobset = jobset

    @property
    def jobset(self) -> JobSet:
        return self._jobset

    @property
    def analyzer(self) -> HolisticAnalyzer:
        return self._analyzer

    @property
    def opa_compatible(self) -> bool:
        return self._analyzer.opa_compatible

    def delay(self, i: int, higher: MaskLike,
              lower: MaskLike | None = None, *,
              active: np.ndarray | None = None) -> float:
        return self._analyzer.delay_bound(i, higher, lower, active=active)

    def __call__(self, i: int, higher: MaskLike,
                 lower: MaskLike | None = None, *,
                 active: np.ndarray | None = None) -> bool:
        bound = self.delay(i, higher, lower, active=active)
        return bound <= self._jobset.D[i] + DEADLINE_TOLERANCE


def holistic_opa(jobset: JobSet, *,
                 preemptive: "list[bool] | None" = None,
                 blocking: str = "all") -> OPAResult:
    """Audsley's OPA driven by the holistic test (the HOL approach).

    With ``blocking="all"`` the test is OPA-compatible, so the result
    is an *optimal* ordering with respect to the holistic bound --
    making the comparison against OPDCA a fair analysis-vs-analysis
    fight rather than an algorithmic one.
    """
    test = SHolistic(jobset, preemptive=preemptive, blocking=blocking)
    if not test.opa_compatible:
        raise ValueError(
            "holistic OPA needs the OPA-compatible blocking='all' "
            "variant on systems with non-preemptive stages")
    return audsley(jobset.num_jobs, test)
