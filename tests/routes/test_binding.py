"""Tests for the route -> strict-pipeline reduction."""

import numpy as np
import pytest

from repro.core.dca import DelayAnalyzer
from repro.core.exceptions import ModelError
from repro.core.opdca import opdca
from repro.core.segments import SegmentCache, pair_segments
from repro.core.system import MSMRSystem, Stage
from repro.routes.binding import route_jobset
from repro.routes.model import RouteJob
from repro.sim.engine import simulate


@pytest.fixture
def system():
    return MSMRSystem([Stage(2), Stage(2), Stage(2)])


@pytest.fixture
def jobs():
    return [
        RouteJob(stages=(0, 2), processing=(3, 4), resources=(0, 1),
                 deadline=30),
        RouteJob(stages=(0, 1, 2), processing=(2, 5, 1),
                 resources=(0, 0, 1), deadline=25),
        RouteJob(stages=(1,), processing=(6,), resources=(0,),
                 deadline=20),
    ]


class TestPadding:
    def test_skipped_stages_get_zero_processing(self, system, jobs):
        binding = route_jobset(system, jobs)
        P = binding.jobset.P
        assert P[0].tolist() == [3.0, 0.0, 4.0]
        assert P[2].tolist() == [0.0, 6.0, 0.0]

    def test_dummy_resources_appended_after_real_pool(self, system, jobs):
        binding = route_jobset(system, jobs)
        # Stage 1 is skipped by J0 only; stages 0 and 2 by J2 only.
        assert binding.jobset.system.resources_per_stage == (3, 3, 3)
        assert binding.dummy_base == (2, 2, 2)
        assert binding.is_dummy(1, int(binding.jobset.R[0, 1]))
        assert not binding.is_dummy(1, int(binding.jobset.R[1, 1]))

    def test_dummies_never_shared(self, system):
        jobs = [RouteJob(stages=(0,), processing=(1.0,), resources=(0,),
                         deadline=10)
                for _ in range(4)]
        binding = route_jobset(system, jobs)
        for stage in (1, 2):
            dummies = binding.jobset.R[:, stage]
            assert len(set(dummies.tolist())) == 4

    def test_shares_false_at_skipped_stage(self, system, jobs):
        binding = route_jobset(system, jobs)
        shares = binding.jobset.shares
        # J0 and J1 both use resource 0 at stage 0 but J0 skips stage 1.
        assert shares[0, 1, 0]
        assert not shares[0, 1, 1]

    def test_visited_mask(self, system, jobs):
        binding = route_jobset(system, jobs)
        mask = binding.visited_mask()
        assert mask.tolist() == [[True, False, True],
                                 [True, True, True],
                                 [False, True, False]]

    def test_stage_out_of_range_rejected(self, system):
        bad = RouteJob(stages=(0, 5), processing=(1, 1),
                       resources=(0, 0), deadline=10)
        with pytest.raises(ModelError, match="stage 5"):
            route_jobset(system, [bad])

    def test_resource_out_of_range_rejected(self, system):
        bad = RouteJob(stages=(0,), processing=(1,), resources=(7,),
                       deadline=10)
        with pytest.raises(ModelError, match="resource 7"):
            route_jobset(system, [bad])

    def test_empty_jobs_rejected(self, system):
        with pytest.raises(ModelError, match="at least one"):
            route_jobset(system, [])


class TestSegmentSemantics:
    def test_skipped_stage_splits_segments(self):
        """Two jobs sharing stages 0 and 2 where one skips stage 1 must
        form two segments, not one merged run."""
        system = MSMRSystem([Stage(1), Stage(1), Stage(1)])
        jobs = [
            RouteJob(stages=(0, 2), processing=(2, 2), resources=(0, 0),
                     deadline=50),
            RouteJob(stages=(0, 1, 2), processing=(3, 3, 3),
                     resources=(0, 0, 0), deadline=50),
        ]
        binding = route_jobset(system, jobs)
        profile = pair_segments(binding.jobset, 0, 1)
        assert profile.m == 2
        assert profile.u == 2
        assert profile.w == 2

    def test_full_route_matches_plain_jobset(self):
        """Routes visiting every stage reduce to the original model."""
        from repro.core.job import Job
        from repro.core.system import JobSet

        system = MSMRSystem([Stage(2), Stage(2)])
        route = [RouteJob(stages=(0, 1), processing=(3, 4),
                          resources=(0, 1), deadline=30),
                 RouteJob(stages=(0, 1), processing=(2, 2),
                          resources=(0, 1), deadline=30)]
        binding = route_jobset(system, route)
        plain = JobSet(system, [
            Job(processing=(3, 4), deadline=30, resources=(0, 1)),
            Job(processing=(2, 2), deadline=30, resources=(0, 1)),
        ])
        assert binding.jobset.system == system  # no dummies added
        np.testing.assert_array_equal(binding.jobset.shares, plain.shares)
        cache_a = SegmentCache(binding.jobset)
        cache_b = SegmentCache(plain)
        np.testing.assert_allclose(cache_a.W, cache_b.W)

    def test_zero_stages_never_contribute_delay(self, system, jobs):
        binding = route_jobset(system, jobs)
        analyzer = DelayAnalyzer(binding.jobset)
        # J2 only shares stage 1 with J1; its bound must ignore the
        # zero-time dummy visits entirely.
        higher = np.array([False, True, False])
        bound = analyzer.eq6(2, higher)
        # self t1 = 6, J1 shares stage 1 (w=1, et=5), no earlier stage
        # shared => stage-additive = max ep at stage 0 (0) + stage 1 (6).
        assert bound == pytest.approx(6 + 5 + 0 + 6)


class TestEndToEnd:
    def test_simulation_passes_through_dummies(self, system, jobs):
        binding = route_jobset(system, jobs)
        result = simulate(binding.jobset, np.array([1, 2, 3]))
        # J0: 3 at stage 0 then 4 at stage 2, no contention en route
        # (J1 shares stage 0 but has lower priority... J0 first).
        assert result.delays[0] == pytest.approx(7.0)

    def test_real_trace_filters_dummies(self, system, jobs):
        binding = route_jobset(system, jobs)
        result = simulate(binding.jobset, np.array([1, 2, 3]))
        real = binding.real_trace(result.trace)
        assert all(not binding.is_dummy(iv.stage, iv.resource)
                   for iv in real)
        visited = sum(job.num_visited for job in jobs)
        completed = [iv for iv in real if iv.completed]
        assert len(completed) == visited

    def test_opdca_on_routes(self, system, jobs):
        binding = route_jobset(system, jobs)
        result = opdca(binding.jobset)
        assert result.feasible
