"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's figures and the reproduction's
ablations as plain-text tables, e.g.::

    python -m repro fig4a --cases 50
    python -m repro fig4a --cases 100 --jobs 8
    python -m repro fig4d
    python -m repro ablate-solver --cases 5
    python -m repro scalability --sizes 25 50 100

Every subcommand accepts ``--jobs N`` to shard its seeded test cases
across ``N`` worker processes (default: the ``REPRO_JOBS`` environment
variable, else serial).  Results are identical for any worker count.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from repro.experiments.ablation import (
    bound_tightness,
    heuristic_comparison,
    holistic_comparison,
    refinement_ablation,
    scalability,
    solver_agreement,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import (
    format_chart,
    format_series,
    format_table,
    shape_checks,
)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for every experiment/ablation subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Optimal Fixed Priority "
                    "Scheduling in Multi-Stage Multi-Resource Distributed "
                    "Real-Time Systems' (DATE 2024).")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cases", type=int, default=None,
                       help="test cases per sweep point "
                            "(default: 10, or 100 with REPRO_FULL=1)")
        p.add_argument("--seed0", type=int, default=0,
                       help="first seed of the case range")
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the case sweep "
                            "(default: REPRO_JOBS env var, else 1; "
                            "results are identical for any N)")

    for name in ("fig4a", "fig4b", "fig4c", "fig4d"):
        p = sub.add_parser(name, help=f"regenerate {name} of the paper")
        add_common(p)
        p.add_argument("--stacked", action="store_true",
                       help="show DMR/OPDCA/OPT as stacked increments "
                            "(the paper's histogram view)")
        p.add_argument("--chart", action="store_true",
                       help="also render the panel as an ASCII chart")
        p.add_argument("--opt-backend", default="highs",
                       choices=("highs", "branch_bound", "cp"))

    p = sub.add_parser("ablate-refinement",
                       help="A1: Eq.3 vs refined Eq.6 pessimism")
    add_common(p)
    p = sub.add_parser("ablate-solver",
                       help="A2/A5: OPT backend & linearisation agreement")
    add_common(p)
    p = sub.add_parser("validate-sim",
                       help="A3: simulated delays vs analytical bounds")
    add_common(p)
    p = sub.add_parser("ablate-heuristics",
                       help="A6: pairwise heuristics vs DMR and OPT")
    add_common(p)
    p = sub.add_parser("ablate-holistic",
                       help="A7: classical holistic analysis vs DCA")
    add_common(p)
    p = sub.add_parser("scalability", help="A4: runtime vs job count")
    p.add_argument("--cases", type=int, default=3)
    p.add_argument("--sizes", type=int, nargs="+",
                   default=[25, 50, 100, 150], metavar="N",
                   help="job counts to sweep")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes (as for the other commands)")
    p = sub.add_parser(
        "sensitivity",
        help="S1-S3: does the OPT gap grow with jobs/resources/stages?")
    add_common(p)
    p.add_argument("--axis", choices=("jobs", "resources", "stages",
                                      "all"),
                   default="all")

    return parser


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.from_environment()
    overrides = {}
    if getattr(args, "cases", None) is not None:
        overrides["cases"] = args.cases
    if getattr(args, "seed0", 0):
        overrides["seed0"] = args.seed0
    if getattr(args, "opt_backend", None):
        overrides["opt_backend"] = args.opt_backend
    if getattr(args, "jobs", None) is not None:
        overrides["n_workers"] = max(1, args.jobs)
    if overrides:
        config = replace(config, **overrides)
    return config


def _n_workers(args: argparse.Namespace) -> int:
    """Worker count for subcommands not driven by ExperimentConfig."""
    from repro.experiments.parallel import default_workers

    jobs = getattr(args, "jobs", None)
    return max(1, jobs) if jobs is not None else default_workers()


def main(argv: "list[str] | None" = None) -> int:
    """Entry point of ``python -m repro``; returns the exit code."""
    args = build_parser().parse_args(argv)
    start = time.perf_counter()
    n_workers = _n_workers(args)

    if args.command in ALL_FIGURES:
        config = _experiment_config(args)
        figure = ALL_FIGURES[args.command](config)
        print(format_table(figure, stacked=args.stacked))
        print()
        print(format_series(figure))
        if args.chart:
            print()
            print(format_chart(figure))
        problems = shape_checks(figure)
        if problems:
            print("\nSHAPE VIOLATIONS (should be impossible for the "
                  "guaranteed relations):")
            for problem in problems:
                print(f"  - {problem}")
    elif args.command == "ablate-refinement":
        cases = args.cases if args.cases is not None else 10
        print(refinement_ablation(cases=cases, seed0=args.seed0,
                                  n_workers=n_workers).format())
    elif args.command == "ablate-solver":
        cases = args.cases if args.cases is not None else 5
        print(solver_agreement(cases=cases, seed0=args.seed0,
                               n_workers=n_workers).format())
    elif args.command == "validate-sim":
        cases = args.cases if args.cases is not None else 10
        print(bound_tightness(cases=cases, seed0=args.seed0,
                              n_workers=n_workers).format())
    elif args.command == "ablate-heuristics":
        cases = args.cases if args.cases is not None else 10
        print(heuristic_comparison(cases=cases, seed0=args.seed0,
                                   n_workers=n_workers).format())
    elif args.command == "ablate-holistic":
        cases = args.cases if args.cases is not None else 10
        print(holistic_comparison(cases=cases, seed0=args.seed0,
                                  n_workers=n_workers).format())
    elif args.command == "scalability":
        print(scalability(job_counts=tuple(args.sizes),
                          cases=args.cases,
                          n_workers=n_workers).format())
    elif args.command == "sensitivity":
        from repro.experiments.sensitivity import (
            gap_vs_jobs,
            gap_vs_resources,
            gap_vs_stages,
            summarize_gaps,
        )

        cases = args.cases if args.cases is not None else 10
        sweeps = {"jobs": gap_vs_jobs, "resources": gap_vs_resources,
                  "stages": gap_vs_stages}
        selected = (list(sweeps) if args.axis == "all" else [args.axis])
        results = []
        for axis in selected:
            result = sweeps[axis](cases=cases, seed0=args.seed0,
                                  n_workers=n_workers)
            results.append(result)
            print(result.format())
            print()
        print(summarize_gaps(results))
    else:  # pragma: no cover - argparse guards this
        return 1

    print(f"\n[done in {time.perf_counter() - start:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
