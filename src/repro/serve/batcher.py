"""Admit-path batching and overload shedding for the service.

All mutating tenant events (``/v1/admit``, ``/v1/depart``) funnel
through one :class:`EventBatcher`: a bounded FIFO queue drained by a
single consumer task.  The consumer wakes once per pending burst and
drains up to ``max_batch`` entries before yielding to the event loop,
so under concurrent load the per-event asyncio overhead (task wakeups,
queue handoffs) is amortised across the batch -- the coalescing that
lets the service sustain the benchmark gate's events/sec floor.

Single-consumer draining also *serialises* engine calls without locks:
events of one tenant are processed in exactly arrival order, which is
what makes served decisions bitwise-identical to an offline replay.

Overload policy (load shedding, bounded memory):

* queue full -> the request is shed immediately with HTTP 503 and a
  ``Retry-After`` hint; nothing blocks.
* an entry older than ``queue_timeout`` seconds when the consumer
  reaches it -> shed with 503 (its deadline already passed; doing the
  work would only add latency to everyone behind it).

Clients (e.g. the bench load generator) retry 503s with exponential
backoff; ``shed_ratio`` is exported by ``/metrics``.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass

#: Default bound on queued (not yet processed) events.
QUEUE_LIMIT = 1024

#: Default max events drained per consumer wakeup.
MAX_BATCH = 64

#: Default seconds an entry may wait before it is shed as stale.
QUEUE_TIMEOUT = 2.0


class OverloadError(RuntimeError):
    """The service shed this request (maps to HTTP 503)."""


@dataclass
class BatcherStats:
    """Counters the batcher exports through ``/metrics``."""

    enqueued: int = 0
    processed: int = 0
    shed_full: int = 0
    shed_stale: int = 0
    failed: int = 0
    batches: int = 0
    max_batch_seen: int = 0

    @property
    def shed(self) -> int:
        return self.shed_full + self.shed_stale

    @property
    def shed_ratio(self) -> float:
        offered = self.enqueued + self.shed_full
        return self.shed / offered if offered else 0.0

    def to_dict(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "processed": self.processed,
            "shed_full": self.shed_full,
            "shed_stale": self.shed_stale,
            "shed_ratio": self.shed_ratio,
            "failed": self.failed,
            "batches": self.batches,
            "max_batch_seen": self.max_batch_seen,
        }


class _Entry:
    __slots__ = ("work", "future", "enqueued_at")

    def __init__(self, work, future, enqueued_at):
        self.work = work
        self.future = future
        self.enqueued_at = enqueued_at


class EventBatcher:
    """Bounded queue + single consumer draining coalesced batches.

    ``submit`` returns a future resolved with the work callable's
    result (or its exception); the callable runs on the consumer
    task, so submitted work is globally serialised.
    """

    def __init__(self, *, queue_limit: int = QUEUE_LIMIT,
                 max_batch: int = MAX_BATCH,
                 queue_timeout: float = QUEUE_TIMEOUT) -> None:
        if queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {queue_limit}")
        if max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {max_batch}")
        if queue_timeout <= 0:
            raise ValueError(
                f"queue_timeout must be > 0, got {queue_timeout}")
        self.queue_limit = queue_limit
        self.max_batch = max_batch
        self.queue_timeout = queue_timeout
        self.stats = BatcherStats()
        self._queue: "deque[_Entry]" = deque()
        self._wakeup = asyncio.Event()
        self._closed = False
        self._consumer: "asyncio.Task | None" = None

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        """Spawn the consumer task on the running loop."""
        if self._consumer is None:
            self._consumer = asyncio.get_running_loop().create_task(
                self._consume(), name="repro-serve-batcher")

    async def close(self) -> None:
        """Drain what's queued, then stop the consumer."""
        self._closed = True
        self._wakeup.set()
        if self._consumer is not None:
            await self._consumer
            self._consumer = None

    # -- producer side -----------------------------------------------

    def submit(self, work) -> "asyncio.Future":
        """Enqueue a zero-argument callable; raises
        :class:`OverloadError` immediately when the queue is full."""
        if self._closed:
            raise OverloadError("service is shutting down")
        if len(self._queue) >= self.queue_limit:
            self.stats.shed_full += 1
            raise OverloadError(
                f"admission queue full ({self.queue_limit} pending)")
        future = asyncio.get_running_loop().create_future()
        self._queue.append(_Entry(work, future, time.monotonic()))
        self.stats.enqueued += 1
        self._wakeup.set()
        return future

    # -- consumer side -----------------------------------------------

    async def _consume(self) -> None:
        while True:
            if not self._queue:
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            drained = 0
            now = time.monotonic()
            while self._queue and drained < self.max_batch:
                entry = self._queue.popleft()
                drained += 1
                if entry.future.cancelled():
                    continue
                if now - entry.enqueued_at > self.queue_timeout:
                    self.stats.shed_stale += 1
                    entry.future.set_exception(OverloadError(
                        "request timed out waiting in the admission "
                        "queue"))
                    continue
                try:
                    entry.future.set_result(entry.work())
                    self.stats.processed += 1
                except Exception as error:  # noqa: BLE001
                    self.stats.failed += 1
                    entry.future.set_exception(error)
            self.stats.batches += 1
            self.stats.max_batch_seen = max(
                self.stats.max_batch_seen, drained)
            # One cooperative yield per batch, not per event: this is
            # the coalescing that amortises loop overhead.
            await asyncio.sleep(0)
