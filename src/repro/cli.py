"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's figures and the reproduction's
ablations as plain-text tables, e.g.::

    python -m repro fig4a --cases 50
    python -m repro fig4a --cases 100 --jobs 8 --cache-dir .cache
    python -m repro fig4d
    python -m repro ablate-solver --cases 5
    python -m repro scalability --sizes 25 50 100
    python -m repro store stats --cache-dir .cache

Every subcommand accepts ``--jobs N`` to shard its seeded test cases
across ``N`` worker processes (default: the ``REPRO_JOBS`` environment
variable, else serial).  Results are identical for any worker count.

Every subcommand also accepts ``--cache-dir DIR`` (default: the
``REPRO_CACHE_DIR`` environment variable) to persist per-case results
in a content-addressed store: re-runs and interrupted sweeps resume
from what is already on disk.  ``--resume`` additionally *requires*
the store to exist (guarding against a mistyped directory silently
starting a cold sweep) and ``--no-cache`` disables caching entirely.
The ``store`` subcommand inspects (``stats``), compacts (``gc``) and
flattens (``export``) such a store.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace

from repro.experiments.ablation import (
    bound_tightness,
    heuristic_comparison,
    holistic_comparison,
    refinement_ablation,
    scalability,
    solver_agreement,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import (
    format_cache_summary,
    format_chart,
    format_series,
    format_table,
    shape_checks,
)


def positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer.

    Rejects ``0`` and negatives with a clear argparse error instead of
    letting them reach ``ProcessPoolExecutor`` (which would die with
    an opaque traceback) or produce empty sweeps.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for every experiment/ablation subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Optimal Fixed Priority "
                    "Scheduling in Multi-Stage Multi-Resource Distributed "
                    "Real-Time Systems' (DATE 2024).")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cache_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persist per-case results in a "
                            "content-addressed store at DIR (default: "
                            "the REPRO_CACHE_DIR env var); cached "
                            "cases are never re-evaluated")
        p.add_argument("--resume", action="store_true",
                       help="require an existing store at --cache-dir "
                            "and resume from it (errors out instead "
                            "of silently starting a cold sweep)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the result store even when "
                            "--cache-dir or REPRO_CACHE_DIR is set")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cases", type=positive_int, default=None,
                       help="test cases per sweep point "
                            "(default: 10, or 100 with REPRO_FULL=1)")
        p.add_argument("--seed0", type=int, default=0,
                       help="first seed of the case range")
        p.add_argument("--jobs", type=positive_int, default=None,
                       metavar="N",
                       help="worker processes for the case sweep "
                            "(default: REPRO_JOBS env var, else 1; "
                            "results are identical for any N)")
        add_cache_options(p)

    for name in ("fig4a", "fig4b", "fig4c", "fig4d"):
        p = sub.add_parser(name, help=f"regenerate {name} of the paper")
        add_common(p)
        p.add_argument("--stacked", action="store_true",
                       help="show DMR/OPDCA/OPT as stacked increments "
                            "(the paper's histogram view)")
        p.add_argument("--chart", action="store_true",
                       help="also render the panel as an ASCII chart")
        p.add_argument("--opt-backend", default="highs",
                       choices=("highs", "branch_bound", "cp"))

    p = sub.add_parser("ablate-refinement",
                       help="A1: Eq.3 vs refined Eq.6 pessimism")
    add_common(p)
    p = sub.add_parser("ablate-solver",
                       help="A2/A5: OPT backend & linearisation agreement")
    add_common(p)
    p = sub.add_parser("validate-sim",
                       help="A3: simulated delays vs analytical bounds")
    add_common(p)
    p = sub.add_parser("ablate-heuristics",
                       help="A6: pairwise heuristics vs DMR and OPT")
    add_common(p)
    p = sub.add_parser("ablate-holistic",
                       help="A7: classical holistic analysis vs DCA")
    add_common(p)
    p = sub.add_parser("scalability", help="A4: runtime vs job count")
    p.add_argument("--cases", type=positive_int, default=3)
    p.add_argument("--sizes", type=positive_int, nargs="+",
                   default=[25, 50, 100, 150], metavar="N",
                   help="job counts to sweep")
    p.add_argument("--jobs", type=positive_int, default=None,
                   metavar="N",
                   help="worker processes (as for the other commands)")
    add_cache_options(p)
    p = sub.add_parser(
        "sensitivity",
        help="S1-S3: does the OPT gap grow with jobs/resources/stages?")
    add_common(p)
    p.add_argument("--axis", choices=("jobs", "resources", "stages",
                                      "all"),
                   default="all")

    p = sub.add_parser("store",
                       help="inspect/manage a result store "
                            "(stats | gc | export)")
    store_sub = p.add_subparsers(dest="store_command", required=True)
    for action, description in (
            ("stats", "summarise entries, staleness and size"),
            ("gc", "compact shards, dropping stale/corrupt records"),
            ("export", "flatten the store to one sorted JSONL file")):
        sp = store_sub.add_parser(action, help=description)
        sp.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="store root (default: REPRO_CACHE_DIR)")
        if action == "export":
            sp.add_argument("--output", "-o", required=True,
                            metavar="FILE",
                            help="destination JSONL file")

    return parser


def _cache_dir(args: argparse.Namespace) -> "str | None":
    explicit = getattr(args, "cache_dir", None)
    if explicit:
        return explicit
    environment = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return environment or None


def _resolve_store(args: argparse.Namespace,
                   parser: argparse.ArgumentParser):
    """The ResultStore the flags ask for (or ``None``)."""
    if getattr(args, "no_cache", False):
        if getattr(args, "resume", False):
            parser.error("--resume and --no-cache are contradictory")
        return None
    cache_dir = _cache_dir(args)
    if getattr(args, "resume", False):
        from repro.store import is_store

        if not cache_dir:
            parser.error("--resume requires --cache-dir "
                         "(or REPRO_CACHE_DIR)")
        if not is_store(cache_dir):
            parser.error(f"--resume: no result store at {cache_dir!r} "
                         f"(run once with --cache-dir to create it)")
    if not cache_dir:
        return None
    from repro.store import ResultStore

    return ResultStore(cache_dir)


def _run_store_command(args: argparse.Namespace,
                       parser: argparse.ArgumentParser) -> int:
    from repro.store import store_export, store_gc, store_stats

    cache_dir = _cache_dir(args)
    if not cache_dir:
        parser.error("store commands need --cache-dir "
                     "(or REPRO_CACHE_DIR)")
    try:
        if args.store_command == "stats":
            print(store_stats(cache_dir))
        elif args.store_command == "gc":
            print(store_gc(cache_dir))
        else:
            print(store_export(cache_dir, args.output))
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.from_environment()
    overrides = {}
    if getattr(args, "cases", None) is not None:
        overrides["cases"] = args.cases
    if getattr(args, "seed0", 0):
        overrides["seed0"] = args.seed0
    if getattr(args, "opt_backend", None):
        overrides["opt_backend"] = args.opt_backend
    if getattr(args, "jobs", None) is not None:
        overrides["n_workers"] = args.jobs
    if overrides:
        config = replace(config, **overrides)
    return config


def _n_workers(args: argparse.Namespace) -> int:
    """Worker count for subcommands not driven by ExperimentConfig."""
    from repro.experiments.parallel import default_workers

    jobs = getattr(args, "jobs", None)
    return jobs if jobs is not None else default_workers()


def main(argv: "list[str] | None" = None) -> int:
    """Entry point of ``python -m repro``; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "store":
        return _run_store_command(args, parser)
    start = time.perf_counter()
    n_workers = _n_workers(args)
    if args.command == "scalability":
        # A timing table: never open (or even create) a store for it.
        store = None
        if getattr(args, "resume", False) or _cache_dir(args):
            print("[cache] scalability is a timing benchmark; "
                  "its measurements are never cached")
    else:
        store = _resolve_store(args, parser)

    if args.command in ALL_FIGURES:
        config = _experiment_config(args)
        figure = ALL_FIGURES[args.command](config, store=store)
        print(format_table(figure, stacked=args.stacked))
        print()
        print(format_series(figure))
        if args.chart:
            print()
            print(format_chart(figure))
        problems = shape_checks(figure)
        if problems:
            print("\nSHAPE VIOLATIONS (should be impossible for the "
                  "guaranteed relations):")
            for problem in problems:
                print(f"  - {problem}")
    elif args.command == "ablate-refinement":
        cases = args.cases if args.cases is not None else 10
        print(refinement_ablation(cases=cases, seed0=args.seed0,
                                  n_workers=n_workers,
                                  store=store).format())
    elif args.command == "ablate-solver":
        cases = args.cases if args.cases is not None else 5
        print(solver_agreement(cases=cases, seed0=args.seed0,
                               n_workers=n_workers,
                               store=store).format())
    elif args.command == "validate-sim":
        cases = args.cases if args.cases is not None else 10
        print(bound_tightness(cases=cases, seed0=args.seed0,
                              n_workers=n_workers,
                              store=store).format())
    elif args.command == "ablate-heuristics":
        cases = args.cases if args.cases is not None else 10
        print(heuristic_comparison(cases=cases, seed0=args.seed0,
                                   n_workers=n_workers,
                                   store=store).format())
    elif args.command == "ablate-holistic":
        cases = args.cases if args.cases is not None else 10
        print(holistic_comparison(cases=cases, seed0=args.seed0,
                                  n_workers=n_workers,
                                  store=store).format())
    elif args.command == "scalability":
        print(scalability(job_counts=tuple(args.sizes),
                          cases=args.cases,
                          n_workers=n_workers).format())
    elif args.command == "sensitivity":
        from repro.experiments.sensitivity import (
            gap_vs_jobs,
            gap_vs_resources,
            gap_vs_stages,
            summarize_gaps,
        )

        cases = args.cases if args.cases is not None else 10
        sweeps = {"jobs": gap_vs_jobs, "resources": gap_vs_resources,
                  "stages": gap_vs_stages}
        selected = (list(sweeps) if args.axis == "all" else [args.axis])
        results = []
        for axis in selected:
            result = sweeps[axis](cases=cases, seed0=args.seed0,
                                  n_workers=n_workers, store=store)
            results.append(result)
            print(result.format())
            print()
        print(summarize_gaps(results))
    else:  # pragma: no cover - argparse guards this
        return 1

    if store is not None:
        print()
        print(format_cache_summary(store))
    print(f"\n[done in {time.perf_counter() - start:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
