"""Tests for sparkline rendering."""

import pytest

from repro.viz.sparkline import (
    ASCII_BLOCKS,
    BLOCKS,
    sparkline,
    sparkline_table,
)


class TestSparkline:
    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 25, 50, 75, 100], lo=0, hi=100)
        levels = [BLOCKS.index(c) for c in line]
        assert levels == sorted(levels)
        assert levels[0] == 0
        assert levels[-1] == len(BLOCKS) - 1

    def test_flat_series_mid_height(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert line == BLOCKS[len(BLOCKS) // 2] * 3

    def test_ascii_mode(self):
        line = sparkline([0, 100], lo=0, hi=100, ascii_only=True)
        assert set(line) <= set(ASCII_BLOCKS)

    def test_values_clipped_to_range(self):
        line = sparkline([-50, 150], lo=0, hi=100)
        assert line[0] == BLOCKS[0]
        assert line[1] == BLOCKS[-1]

    def test_empty(self):
        assert sparkline([]) == ""

    def test_bad_range(self):
        with pytest.raises(ValueError, match="hi"):
            sparkline([1.0], lo=10, hi=0)

    def test_one_char_per_point(self):
        assert len(sparkline(list(range(17)))) == 17


class TestSparklineTable:
    def test_shared_scale(self):
        table = sparkline_table({"a": [0, 10], "b": [0, 100]})
        line_a, line_b = table.splitlines()
        # Series a tops out at 10 on a 0-100 scale: low block.
        assert BLOCKS.index(line_a.split()[1][-1]) < \
            BLOCKS.index(line_b.split()[1][-1])

    def test_annotations(self):
        table = sparkline_table({"dm": [71.0, 40.0]})
        assert "[40.0 .. 71.0]" in table

    def test_empty(self):
        assert sparkline_table({}) == "(no data)"
