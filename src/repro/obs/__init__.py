"""repro.obs — the telemetry spine for the whole stack.

Zero-dependency metrics registry (``Counter``/``Gauge``/
``Histogram`` with Prometheus exposition), contextvar-propagated
span tracing with JSONL export, and the ``repro obs report``
renderer.  See ``docs/observability.md`` for the metric glossary
and trace-file format.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    default_buckets,
    get_registry,
    null_instrumentation,
)
from .report import load_spans, render_report
from .tracing import (
    JsonlSpanExporter,
    Span,
    configure_exporter,
    current_span,
    iter_trace_file,
    maybe_profile,
    profile_step,
    reset_tracing,
    span,
    start_trace,
    trace_step,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSpanExporter",
    "Registry",
    "Span",
    "configure_exporter",
    "current_span",
    "default_buckets",
    "get_registry",
    "iter_trace_file",
    "load_spans",
    "maybe_profile",
    "null_instrumentation",
    "profile_step",
    "render_report",
    "reset_tracing",
    "span",
    "start_trace",
    "trace_step",
    "tracing_enabled",
]
