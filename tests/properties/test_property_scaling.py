"""Property-based tests for critical scaling and serialisation.

* homogeneity: every DCA bound scales linearly with the processing
  times, for random instances, equations and priority structures;
* the critical factor is exact: scaling by it keeps the instance
  feasible, scaling by slightly more breaks it;
* serialisation round-trips preserve the arrays bit-for-bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dca import DelayAnalyzer
from repro.core.job import Job
from repro.core.scaling import critical_scaling, verify_homogeneity
from repro.core.serialize import dumps, loads
from repro.core.system import JobSet
from repro.workload.random_jobs import RandomInstanceConfig, random_jobset

instances = st.fixed_dictionaries({
    "seed": st.integers(0, 10_000),
    "num_jobs": st.integers(2, 6),
    "num_stages": st.integers(1, 4),
    "resources": st.integers(1, 3),
})


def build(params):
    config = RandomInstanceConfig(
        num_jobs=params["num_jobs"],
        num_stages=params["num_stages"],
        resources_per_stage=params["resources"],
        max_offset=5.0,
    )
    return random_jobset(config, seed=params["seed"])


@settings(max_examples=40, deadline=None)
@given(params=instances,
       equation=st.sampled_from(["eq3", "eq5", "eq6"]),
       factor=st.floats(0.25, 4.0))
def test_bounds_are_homogeneous(params, equation, factor):
    jobset = build(params)
    priority = np.arange(1, jobset.num_jobs + 1)
    assert verify_homogeneity(jobset, priority, factor=factor,
                              equation=equation)


@settings(max_examples=40, deadline=None)
@given(params=instances)
def test_critical_factor_is_exact(params):
    jobset = build(params)
    n = jobset.num_jobs
    priority = np.arange(1, n + 1)
    result = critical_scaling(jobset, priority, equation="eq6")
    if not np.isfinite(result.factor):
        return

    def scaled_feasible(factor: float) -> bool:
        jobs = [Job(processing=tuple(p * factor
                                     for p in job.processing),
                    deadline=job.deadline, resources=job.resources,
                    arrival=job.arrival)
                for job in jobset.jobs]
        scaled = JobSet(jobset.system, jobs)
        delays = DelayAnalyzer(scaled).delays_for_ordering(
            priority, equation="eq6")
        return bool((delays <= scaled.D + 1e-9).all())

    assert scaled_feasible(result.factor * (1.0 - 1e-9))
    assert not scaled_feasible(result.factor * 1.01)


@settings(max_examples=40, deadline=None)
@given(params=instances)
def test_serialisation_round_trip(params):
    jobset = build(params)
    clone = loads(dumps(jobset))
    np.testing.assert_array_equal(clone.P, jobset.P)
    np.testing.assert_array_equal(clone.A, jobset.A)
    np.testing.assert_array_equal(clone.D, jobset.D)
    np.testing.assert_array_equal(clone.R, jobset.R)
    assert clone.system == jobset.system


@settings(max_examples=30, deadline=None)
@given(params=instances)
def test_round_trip_preserves_bounds(params):
    jobset = build(params)
    clone = loads(dumps(jobset))
    priority = np.arange(1, jobset.num_jobs + 1)
    original = DelayAnalyzer(jobset).delays_for_ordering(priority)
    restored = DelayAnalyzer(clone).delays_for_ordering(priority)
    np.testing.assert_array_equal(original, restored)
