"""Tests for the exhaustive reference oracles."""

import numpy as np
import pytest

from repro.core.opdca import opdca
from repro.core.oracle import (
    MAX_ORDERING_JOBS,
    MAX_PAIRWISE_PAIRS,
    best_ordering,
    enumerate_orderings,
    exists_pairwise,
)
from repro.core.system import JobSet
from repro.pairwise.opt import opt
from repro.workload.random_jobs import RandomInstanceConfig, random_jobset


def small_instance(seed, *, num_jobs=5, resources=2):
    config = RandomInstanceConfig(num_jobs=num_jobs, num_stages=3,
                                  resources_per_stage=resources)
    return random_jobset(config, seed=seed)


class TestEnumerateOrderings:
    def test_yields_all_permutations(self):
        jobset = JobSet.single_resource([(1, 1), (2, 2), (3, 3)],
                                        [50, 50, 50])
        orderings = list(enumerate_orderings(jobset))
        assert len(orderings) == 6
        seen = {tuple(priority.tolist())
                for priority, _ in orderings}
        assert len(seen) == 6

    def test_delays_match_analyzer(self):
        from repro.core.dca import DelayAnalyzer

        jobset = small_instance(1, num_jobs=4)
        analyzer = DelayAnalyzer(jobset)
        for priority, delays in enumerate_orderings(jobset):
            expected = analyzer.delays_for_ordering(priority,
                                                    equation="eq6")
            np.testing.assert_allclose(delays, expected)

    def test_size_guard(self):
        jobset = small_instance(0, num_jobs=MAX_ORDERING_JOBS + 1)
        with pytest.raises(ValueError, match="capped"):
            list(enumerate_orderings(jobset))


class TestBestOrdering:
    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_opdca(self, seed):
        """Observation IV.3 checked against brute force."""
        jobset = small_instance(seed)
        oracle = best_ordering(jobset, "eq6")
        algorithmic = opdca(jobset, "eq6")
        assert oracle.feasible == algorithmic.feasible

    def test_feasible_result_has_valid_priority(self):
        jobset = JobSet.single_resource([(1, 1), (2, 2)], [100, 100])
        result = best_ordering(jobset)
        assert result.feasible
        assert sorted(result.priority.tolist()) == [1, 2]
        assert result.best_excess <= 0.0

    def test_infeasible_reports_least_bad_ordering(self):
        jobset = JobSet.single_resource([(5, 5), (5, 5)], [11, 11])
        result = best_ordering(jobset)
        assert not result.feasible
        assert result.tried == 2
        assert result.best_excess > 0.0
        assert result.priority is not None


class TestExistsPairwise:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_opt(self, seed):
        jobset = small_instance(seed, num_jobs=5, resources=2)
        if len(jobset.conflict_pairs()) > MAX_PAIRWISE_PAIRS:
            pytest.skip("too many pairs for the oracle")
        oracle = exists_pairwise(jobset, "eq6")
        ilp = opt(jobset, "eq6")
        assert oracle.feasible == ilp.feasible

    def test_figure2_instance_feasible(self, fig2_jobset):
        """Observation V.1: pairwise feasible without any ordering."""
        pairwise = exists_pairwise(fig2_jobset, "eq6")
        ordering = best_ordering(fig2_jobset, "eq6")
        assert pairwise.feasible
        assert not ordering.feasible

    def test_feasible_matrix_is_antisymmetric_on_pairs(self, fig2_jobset):
        result = exists_pairwise(fig2_jobset, "eq6")
        x = result.matrix
        for i, k in result.pairs:
            assert x[i, k] != x[k, i]

    def test_size_guard(self):
        jobset = small_instance(0, num_jobs=8, resources=1)
        assert len(jobset.conflict_pairs()) > MAX_PAIRWISE_PAIRS
        with pytest.raises(ValueError, match="capped"):
            exists_pairwise(jobset)
