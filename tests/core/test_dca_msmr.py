"""Tests for the MSMR bounds (Eqs. 3-6) and the edge bound (Eq. 10),
hand-computed on the Figure 2 instance."""

import numpy as np
import pytest

from repro.core.dca import ALL_EQUATIONS, DelayAnalyzer
from repro.core.exceptions import ModelError
from tests.conftest import as_mask


@pytest.fixture
def analyzer(fig2_jobset):
    return DelayAnalyzer(fig2_jobset)


class TestEq6HandComputed:
    """Figure 2(b) delays under the refined preemptive bound.

    Pairwise assignment: J3>J1, J1>J2, J2>J4, J4>J3 (0-indexed:
    2>0, 0>1, 1>3, 3>2).
    """

    def test_delta_j1(self, analyzer):
        # H = {J3}; shares S1 only (w=1, et=6); self t1=15;
        # stage-additive: max(5,6) + max(7,0).
        assert analyzer.eq6(0, as_mask(4, [2])) == \
            pytest.approx(15 + 6 + 6 + 7)

    def test_delta_j2(self, analyzer):
        # H = {J1}; shares S2+S3 (one segment, w=2, et sum 15+7);
        # self 17; stage-additive: max(7,0) + max(9,7).
        assert analyzer.eq6(1, as_mask(4, [0])) == \
            pytest.approx(17 + 22 + 7 + 9)

    def test_delta_j3(self, analyzer):
        # H = {J4}; shares S2+S3 (w=2, et sum 4+3); self 30;
        # stage-additive: max(6,0) + max(8,4).
        assert analyzer.eq6(2, as_mask(4, [3])) == \
            pytest.approx(30 + 7 + 6 + 8)

    def test_delta_j4(self, analyzer):
        # H = {J2}; shares S1 (w=1, et=7); self 4;
        # stage-additive: max(2,7) + max(4,0).
        assert analyzer.eq6(3, as_mask(4, [1])) == \
            pytest.approx(4 + 7 + 7 + 4)

    def test_non_conflicting_higher_job_is_free(self, analyzer):
        # J4 shares nothing with J1: adding it to H changes nothing.
        base = analyzer.eq6(0, as_mask(4, [2]))
        with_j4 = analyzer.eq6(0, as_mask(4, [2, 3]))
        assert with_j4 == pytest.approx(base)


class TestEq3VsEq6:
    def test_eq3_charges_two_terms_per_segment(self, analyzer):
        # Same context as test_delta_j1: the single 1-stage segment of
        # (J1, J3) costs 2*et1 = 12 under Eq. 3 but only 6 under Eq. 6.
        eq3 = analyzer.eq3(0, as_mask(4, [2]))
        eq6 = analyzer.eq6(0, as_mask(4, [2]))
        assert eq3 == pytest.approx(15 + 12 + 6 + 7)
        assert eq3 - eq6 == pytest.approx(6.0)

    def test_eq3_dominates_eq6(self, analyzer):
        for i in range(4):
            for higher in ([], [(i + 1) % 4], [k for k in range(4)
                                               if k != i]):
                mask = as_mask(4, higher)
                assert analyzer.eq3(i, mask) >= \
                    analyzer.eq6(i, mask) - 1e-9

    def test_multi_stage_segment_costs_the_same(self, analyzer):
        # (J2, J1) share one 2-stage segment: w = 2 and 2*m*et1 may
        # differ: eq3 charges 2*et1 = 30, eq6 charges et1+et2 = 22.
        eq3 = analyzer.eq3(1, as_mask(4, [0]))
        eq6 = analyzer.eq6(1, as_mask(4, [0]))
        assert eq3 - eq6 == pytest.approx((2 * 15) - (15 + 7))


class TestEq4AndEq5:
    def test_eq4_hand_computed(self, analyzer):
        # J1 with H={J3}, L={J2}: job-additive 6+15; stage-additive
        # 6+7; blocking over L per stage: 0+9+17.
        bound = analyzer.eq4(0, as_mask(4, [2]), as_mask(4, [1]))
        assert bound == pytest.approx(21 + 13 + 26)

    def test_eq5_blocks_with_everyone(self, analyzer):
        # Same but blocking over {J2, J3, J4}: 6+9+17.
        bound = analyzer.eq5(0, as_mask(4, [2]))
        assert bound == pytest.approx(21 + 13 + 32)

    def test_eq5_dominates_eq4(self, analyzer):
        for i in range(4):
            higher = as_mask(4, [(i + 1) % 4])
            lower = as_mask(4, [(i + 2) % 4])
            assert analyzer.eq5(i, higher) >= \
                analyzer.eq4(i, higher, lower) - 1e-9

    def test_eq5_independent_of_lower_set(self, analyzer):
        a = analyzer.delay_bound(0, as_mask(4, [2]), as_mask(4, [1]),
                                 equation="eq5")
        b = analyzer.delay_bound(0, as_mask(4, [2]), as_mask(4, [1, 3]),
                                 equation="eq5")
        assert a == pytest.approx(b)


class TestEq10:
    def test_hand_computed(self, analyzer):
        # J1 with H={J3}, L={J2}: job-additive 6 + self 15;
        # uplink max_Q ep1 = max(5,6); server max_Q ep2 = max(7,0);
        # downlink max_L ep3 = 17.
        bound = analyzer.eq10(0, as_mask(4, [2]), as_mask(4, [1]))
        assert bound == pytest.approx(6 + 15 + 6 + 7 + 17)

    def test_empty_lower_set_drops_blocking(self, analyzer):
        bound = analyzer.eq10(0, as_mask(4, [2]), as_mask(4, []))
        assert bound == pytest.approx(6 + 15 + 6 + 7)

    def test_requires_three_stages(self):
        jobset = __import__("repro").JobSet.single_resource(
            processing=[(1, 2), (3, 4)], deadlines=[10, 10])
        analyzer = DelayAnalyzer(jobset)
        with pytest.raises(ModelError, match="3-stage"):
            analyzer.eq10(0, as_mask(2, []), as_mask(2, [1]))


class TestSelfCoefficient:
    def test_literal_eq3_doubles_self_term(self, fig2_jobset):
        refined = DelayAnalyzer(fig2_jobset)
        literal = DelayAnalyzer(fig2_jobset, self_coefficient="literal")
        mask = as_mask(4, [])
        # J3 self t1 = 30; literal charges 2*m_ii*et1 = 60.
        assert literal.eq3(2, mask) - refined.eq3(2, mask) == \
            pytest.approx(30.0)

    def test_literal_eq6_uses_w_self(self, fig2_jobset):
        refined = DelayAnalyzer(fig2_jobset)
        literal = DelayAnalyzer(fig2_jobset, self_coefficient="literal")
        mask = as_mask(4, [])
        # Self pair: one 3-stage segment -> w = 2 -> top-2 sum.
        # J3: 30 + 8 vs refined 30.
        assert literal.eq6(2, mask) - refined.eq6(2, mask) == \
            pytest.approx(8.0)

    def test_rejects_unknown_mode(self, fig2_jobset):
        with pytest.raises(ValueError, match="self_coefficient"):
            DelayAnalyzer(fig2_jobset, self_coefficient="banana")


class TestBatchEvaluation:
    def test_ordering_matches_per_job_bounds(self, analyzer, fig2_jobset):
        priority = np.array([2, 3, 1, 4])
        delays = analyzer.delays_for_ordering(priority, equation="eq6")
        for i in range(4):
            higher = priority < priority[i]
            assert delays[i] == pytest.approx(analyzer.eq6(i, higher))

    def test_pairwise_matches_figure2(self, analyzer, fig2_jobset):
        x = np.zeros((4, 4), dtype=bool)
        for winner, loser in [(2, 0), (0, 1), (1, 3), (3, 2)]:
            x[winner, loser] = True
        delays = analyzer.delays_for_pairwise(x, equation="eq6")
        assert np.allclose(delays, [34, 55, 51, 22])

    def test_active_mask_excludes_jobs(self, analyzer):
        x = np.zeros((4, 4), dtype=bool)
        for winner, loser in [(2, 0), (0, 1), (1, 3), (3, 2)]:
            x[winner, loser] = True
        active = as_mask(4, [0, 1, 3])
        delays = analyzer.delays_for_pairwise(x, equation="eq6",
                                              active=active)
        assert np.isnan(delays[2])
        # Without J3 above it, J1's bound shrinks to its isolated value.
        assert delays[0] == pytest.approx(15 + 5 + 7)

    def test_shape_validation(self, analyzer):
        with pytest.raises(ValueError, match="shape"):
            analyzer.delays_for_pairwise(np.zeros((3, 3), dtype=bool))


class TestDelayBoundDispatch:
    def test_unknown_equation(self, analyzer):
        with pytest.raises(ValueError, match="unknown equation"):
            analyzer.delay_bound(0, as_mask(4, []), equation="eq7")

    def test_all_equations_accept_masks(self, fig2_jobset, example1_jobset):
        msmr = DelayAnalyzer(fig2_jobset)
        single = DelayAnalyzer(example1_jobset)
        higher = as_mask(4, [2])
        lower = as_mask(4, [1])
        for equation in ALL_EQUATIONS:
            target = single if equation in ("eq1", "eq2") else msmr
            value = target.delay_bound(0, higher, lower,
                                       equation=equation)
            assert value > 0

    def test_index_list_masks_accepted(self, analyzer):
        by_mask = analyzer.eq6(0, as_mask(4, [2]))
        by_list = analyzer.eq6(0, [2])
        assert by_mask == pytest.approx(by_list)
